"""Tests for multi-programmed workload mixes."""

import pytest

from repro.traces import (
    MIX_PRESETS,
    MixMember,
    SyntheticSpec,
    build_mix,
    member_share,
    mix_trace,
    preset_mix_trace,
)

MIB = 1 << 20


class TestBuildMix:
    def test_disjoint_regions(self):
        members = build_mix(["mcf", "wrf", "xz"])
        regions = sorted((m.spec.base_addr,
                          m.spec.base_addr + m.spec.footprint_bytes)
                         for m in members)
        for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
            assert end_a <= start_b

    def test_duplicates_allowed_rate_style(self):
        members = build_mix(["mcf", "mcf", "mcf", "mcf"])
        assert len(members) == 4
        assert len({m.spec.base_addr for m in members}) == 4

    def test_weights_follow_mpki(self):
        members = build_mix(["roms", "leela"])
        by_name = {m.spec.name.split("#")[0]: m.weight for m in members}
        assert by_name["roms"] > by_name["leela"]

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            build_mix([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_mix(["quake3"])

    def test_region_override_caps_footprint(self):
        members = build_mix(["roms"], region_bytes=4 * MIB)
        assert members[0].spec.footprint_bytes <= 4 * MIB

    def test_member_weight_validation(self):
        spec = SyntheticSpec("x", 1 * MIB, 0.5, 0.5, 10.0)
        with pytest.raises(ValueError):
            MixMember(spec=spec, weight=0.0)


class TestMixTrace:
    def test_exact_request_count(self):
        members = build_mix(["mcf", "wrf"])
        trace = list(mix_trace(members, 5000))
        assert len(trace) == 5000

    def test_shares_proportional_to_mpki(self):
        members = build_mix(["mcf", "leela"])  # 16.1 vs 0.1 MPKI
        trace = list(mix_trace(members, 8000))
        shares = member_share(members, trace)
        assert shares["mcf#0"] > 0.9
        assert shares["leela#1"] < 0.1

    def test_addresses_stay_in_member_regions(self):
        members = build_mix(["mcf", "wrf"])
        trace = list(mix_trace(members, 4000))
        boundary = members[1].spec.base_addr
        for request in trace:
            member = members[0] if request.addr < boundary else members[1]
            assert member.spec.base_addr <= request.addr \
                < member.spec.base_addr + member.spec.footprint_bytes

    def test_deterministic(self):
        members = build_mix(["mcf", "wrf"])
        a = list(mix_trace(members, 2000, seed=5))
        b = list(mix_trace(build_mix(["mcf", "wrf"]), 2000, seed=5))
        assert a == b

    def test_merged_icount_reflects_aggregate_mpki(self):
        members = build_mix(["roms", "lbm"])  # 31.9 + 31.4 MPKI
        trace = list(mix_trace(members, 1000))
        expected = max(1, round(1000.0 / (31.9 + 31.4)))
        assert all(r.icount == expected for r in trace)

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            list(mix_trace([], 100))


class TestPresets:
    @pytest.mark.parametrize("name", sorted(MIX_PRESETS))
    def test_presets_materialise(self, name):
        trace = preset_mix_trace(name, 1000)
        assert len(trace) == 1000

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            preset_mix_trace("mix-nonsense", 10)

    def test_mix_runs_through_bumblebee(self):
        from repro.core import BumblebeeController
        from repro.mem import ddr4_3200_config, hbm2_config
        from repro.sim import SimulationDriver
        trace = preset_mix_trace("mix-fig1", 6000)
        controller = BumblebeeController(hbm2_config(32 << 20),
                                         ddr4_3200_config(320 << 20))
        result = SimulationDriver().run(controller, trace, workload="mix")
        controller.check_invariants()
        assert result.requests == 6000

"""Tests for the baseline controllers and the shared framework."""

import pytest

from repro.baselines import (
    FIGURE7_VARIANTS,
    FIGURE8_DESIGNS,
    AlloyCacheController,
    BansheeController,
    ChameleonController,
    Hybrid2Controller,
    MetadataCache,
    NoHBMController,
    UnisonCacheController,
    make_controller,
)
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import MemoryRequest, ServicedBy, SimulationDriver
from repro.traces import SyntheticSpec, SyntheticTraceGenerator

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)


def run_trace(controller, n=4000, spatial=0.5, temporal=0.7,
              footprint_mb=16):
    spec = SyntheticSpec("t", footprint_mb * MIB, spatial, temporal,
                         mpki=16.0, hot_fraction=0.1)
    trace = SyntheticTraceGenerator(spec, seed=11).generate(n)
    return SimulationDriver().run(controller, trace, workload="t")


class TestFactory:
    @pytest.mark.parametrize("name", FIGURE8_DESIGNS + FIGURE7_VARIANTS
                             + ["No-HBM"])
    def test_every_design_constructs_and_runs(self, name):
        controller = make_controller(name, HBM, DRAM, sram_bytes=16 * 1024)
        result = run_trace(controller, n=1500)
        assert result.requests == 1500
        assert result.ipc > 0

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            make_controller("FancyCache", HBM, DRAM)

    def test_names_match(self):
        for name in FIGURE8_DESIGNS:
            controller = make_controller(name, HBM, DRAM)
            assert controller.name == name


class TestNoHBM:
    def test_everything_goes_to_dram(self):
        controller = NoHBMController(DRAM)
        result = run_trace(controller, n=1000)
        assert result.hbm_hits == 0
        assert result.dram_traffic_bytes > 0
        assert result.hbm_traffic_bytes == 0

    def test_os_visible_is_dram_only(self):
        controller = NoHBMController(DRAM)
        assert controller.os_visible_bytes() == DRAM.geometry.capacity_bytes


class TestAlloy:
    def test_second_access_hits(self):
        controller = AlloyCacheController(HBM, DRAM)
        controller.access(MemoryRequest(addr=0x1000), 0.0)
        result = controller.access(MemoryRequest(addr=0x1000), 100.0)
        assert result.hbm_hit

    def test_direct_mapped_conflict(self):
        controller = AlloyCacheController(HBM, DRAM)
        slots = controller._slots
        controller.access(MemoryRequest(addr=0), 0.0)
        controller.access(MemoryRequest(addr=slots * 64), 100.0)  # same slot
        result = controller.access(MemoryRequest(addr=0), 200.0)
        assert not result.hbm_hit

    def test_dirty_victim_written_back(self):
        controller = AlloyCacheController(HBM, DRAM)
        slots = controller._slots
        controller.access(MemoryRequest(addr=0, is_write=True), 0.0)
        controller.access(MemoryRequest(addr=slots * 64), 100.0)
        assert controller.stats.get("writeback_bytes") == 64

    def test_tags_consume_capacity(self):
        controller = AlloyCacheController(HBM, DRAM)
        # 72B TADs: fewer slots than 64B lines would allow.
        assert controller._slots < HBM.geometry.capacity_bytes // 64
        assert not controller.metadata_in_sram()

    def test_predictor_learns_misses(self):
        controller = AlloyCacheController(HBM, DRAM)
        for i in range(50):
            controller.access(MemoryRequest(addr=i * (1 << 20)), i * 10.0)
        # After a long miss streak the MAP predicts miss: parallel access,
        # no serialised probe.
        before = controller.stats.get("metadata_accesses")
        assert controller.predictor_miss_rate < 0.5


class TestUnison:
    def test_footprint_predictor_learns(self):
        controller = UnisonCacheController(HBM, DRAM)
        sets = controller._sets
        addr = 0
        controller.access(MemoryRequest(addr=addr), 0.0)
        controller.access(MemoryRequest(addr=addr + 64), 10.0)
        # Evict by filling the same set with other pages.
        for i in range(1, 5):
            controller.access(
                MemoryRequest(addr=(i * sets) * 4096), 100.0 * i)
        page = 0
        assert controller._footprints.get(page, 0).bit_count() >= 2

    def test_miss_pays_tag_probe(self):
        controller = UnisonCacheController(HBM, DRAM)
        result = controller.access(MemoryRequest(addr=0), 0.0)
        assert result.metadata_ns > 0
        assert result.serviced_by is ServicedBy.DRAM

    def test_page_hit_after_fill(self):
        controller = UnisonCacheController(HBM, DRAM)
        controller.access(MemoryRequest(addr=128), 0.0)
        result = controller.access(MemoryRequest(addr=128), 100.0)
        assert result.hbm_hit


class TestBanshee:
    def test_lazy_insertion(self):
        controller = BansheeController(HBM, DRAM)
        result = run_trace(controller, n=2000)
        # Fills are sampled: far fewer page fills than misses.
        fills = result.controller_stats.get("page_fills", 0)
        misses = result.requests - result.hbm_hits
        assert fills < misses / 2

    def test_frequency_gate_rejects_cold(self):
        controller = BansheeController(HBM, DRAM)
        result = run_trace(controller, n=4000, temporal=0.1, spatial=0.1,
                           footprint_mb=64)
        assert result.controller_stats.get("replacement_rejected", 0) > 0

    def test_fills_far_rarer_than_hybrid2(self):
        """Banshee's bandwidth-efficiency mechanism: sampled, gated
        insertions fire far less often than Hybrid2's cache-every-block
        policy on a scatter-heavy workload."""
        banshee = BansheeController(HBM, DRAM)
        hybrid2 = Hybrid2Controller(HBM, DRAM, sram_bytes=16 * 1024)
        run_trace(banshee, n=6000, temporal=0.4, spatial=0.3)
        run_trace(hybrid2, n=6000, temporal=0.4, spatial=0.3)
        assert banshee.stats.get("page_fills") < \
            hybrid2.stats.get("block_fills") / 4


class TestChameleon:
    def test_swap_after_competition(self):
        controller = ChameleonController(HBM, DRAM, sram_bytes=16 * 1024)
        addr = controller._groups_count * 2048  # member 1 of group 0
        for i in range(controller.SWAP_THRESHOLD + 2):
            controller.access(MemoryRequest(addr=addr), i * 50.0)
        assert controller.stats.get("sector_swaps", 0) >= 1
        result = controller.access(MemoryRequest(addr=addr), 1000.0)
        assert result.hbm_hit

    def test_near_member_hits_immediately(self):
        controller = ChameleonController(HBM, DRAM, sram_bytes=16 * 1024)
        result = controller.access(MemoryRequest(addr=0), 0.0)  # member 0
        assert result.hbm_hit

    def test_metadata_pays_mal_when_oversized(self):
        controller = ChameleonController(HBM, DRAM, sram_bytes=1024)
        assert not controller.metadata_in_sram()
        result = run_trace(controller, n=3000, spatial=0.2, temporal=0.2,
                           footprint_mb=32)
        assert result.total_metadata_ns > 0


class TestHybrid2:
    def make(self):
        return Hybrid2Controller(HBM, DRAM, sram_bytes=16 * 1024)

    def test_caches_every_requested_block(self):
        controller = self.make()
        controller.access(MemoryRequest(addr=0), 0.0)
        assert controller.stats.get("block_fills") == 1
        result = controller.access(MemoryRequest(addr=0), 100.0)
        assert result.hbm_hit

    def test_promotion_after_most_blocks(self):
        controller = self.make()
        # Touch 6 of the 8 blocks of page 0.
        for block in range(6):
            controller.access(MemoryRequest(addr=block * 256), block * 50.0)
        assert controller.stats.get("promotions") == 1
        result = controller.access(MemoryRequest(addr=7 * 256), 1000.0)
        assert result.hbm_hit  # whole page now in mHBM

    def test_promotion_charges_mode_switch(self):
        controller = self.make()
        for block in range(6):
            controller.access(MemoryRequest(addr=block * 256), block * 50.0)
        assert controller.stats.get("mode_switch_bytes") >= 2048

    def test_fixed_chbm_fraction(self):
        controller = self.make()
        chbm_bytes = controller._cache_sets * 8 * 256
        assert chbm_bytes == pytest.approx(
            HBM.geometry.capacity_bytes / 16, rel=0.01)

    def test_os_visible_excludes_chbm(self):
        controller = self.make()
        assert controller.os_visible_bytes() < \
            DRAM.geometry.capacity_bytes + HBM.geometry.capacity_bytes


class TestMetadataCache:
    def test_small_table_always_hits(self):
        cache = MetadataCache(sram_bytes=64 * 1024, entry_bytes=8,
                              total_entries=100)
        assert cache.fits_sram
        assert all(cache.lookup(i) for i in range(100))

    def test_large_table_misses(self):
        cache = MetadataCache(sram_bytes=4096, entry_bytes=8,
                              total_entries=1 << 16)
        assert not cache.fits_sram
        for i in range(0, 1 << 16, 97):
            cache.lookup(i)
        assert cache.sram_misses > 0
        assert 0.0 < cache.miss_rate <= 1.0

    def test_hot_entries_hit_after_first_touch(self):
        cache = MetadataCache(sram_bytes=4096, entry_bytes=8,
                              total_entries=1 << 16)
        cache.lookup(5)
        assert cache.lookup(5)

"""Tests for the PLE remapping table, including property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BumblebeeConfig,
    FREE_SLOT,
    PageRemappingTable,
    RemappingSet,
    UNALLOCATED,
    derive_geometry,
)

KIB = 1024
MIB = 1024 * KIB


@pytest.fixture
def geometry():
    return derive_geometry(BumblebeeConfig(), hbm_bytes=32 * MIB,
                           dram_bytes=320 * MIB)


class TestGeometry:
    def test_paper_scale_geometry(self):
        """1GB HBM / 10GB DRAM / 64KB pages / 8 ways => 2048 sets, m=80."""
        geometry = derive_geometry(BumblebeeConfig(),
                                   hbm_bytes=1 << 30, dram_bytes=10 << 30)
        assert geometry.sets == 2048
        assert geometry.dram_slots == 80
        assert geometry.hbm_ways == 8
        assert geometry.ple_bits == 7  # ceil(log2(88))

    def test_os_space_covers_both_memories(self, geometry):
        assert geometry.os_bytes == 320 * MIB + 32 * MIB

    def test_locate_roundtrip(self, geometry):
        for addr in (0, 64 * KIB, 123456789 % geometry.os_bytes):
            set_index, orig = geometry.locate(addr)
            assert 0 <= set_index < geometry.sets
            assert 0 <= orig < geometry.slots_per_set

    def test_consecutive_pages_different_sets(self, geometry):
        a = geometry.locate(0)
        b = geometry.locate(64 * KIB)
        assert a[0] != b[0] or geometry.sets == 1

    def test_device_addresses_unique(self, geometry):
        """No two (set, slot) pairs share a physical page address."""
        seen = set()
        for set_index in (0, 1, geometry.sets - 1):
            for slot in range(geometry.slots_per_set):
                if geometry.is_hbm_slot(slot):
                    addr = geometry.hbm_page_addr(set_index, slot)
                else:
                    addr = geometry.dram_page_addr(set_index, slot)
                key = (geometry.is_hbm_slot(slot), addr)
                assert key not in seen
                seen.add(key)

    def test_wrong_slot_kind_raises(self, geometry):
        with pytest.raises(ValueError):
            geometry.dram_page_addr(0, geometry.dram_slots)
        with pytest.raises(ValueError):
            geometry.hbm_page_addr(0, 0)

    def test_uneven_capacity_rejected(self):
        with pytest.raises(ValueError):
            derive_geometry(BumblebeeConfig(), hbm_bytes=32 * MIB,
                            dram_bytes=320 * MIB + 64 * KIB)


class TestRemappingSet:
    def test_allocate_and_query(self):
        rset = RemappingSet(slots=10)
        rset.allocate(3, 7)
        assert rset.slot_of(3) == 7
        assert rset.occupant(7) == 3
        assert rset.is_allocated(3)
        assert rset.is_occupied(7)

    def test_double_allocate_rejected(self):
        rset = RemappingSet(slots=10)
        rset.allocate(3, 7)
        with pytest.raises(ValueError):
            rset.allocate(3, 8)
        with pytest.raises(ValueError):
            rset.allocate(4, 7)

    def test_move_frees_old_slot(self):
        rset = RemappingSet(slots=10)
        rset.allocate(2, 5)
        old = rset.move(2, 8)
        assert old == 5
        assert rset.occupant(5) == FREE_SLOT
        assert rset.slot_of(2) == 8

    def test_move_unallocated_rejected(self):
        rset = RemappingSet(slots=10)
        with pytest.raises(ValueError):
            rset.move(1, 5)

    def test_swap(self):
        rset = RemappingSet(slots=10)
        rset.allocate(1, 2)
        rset.allocate(3, 4)
        rset.swap(1, 3)
        assert rset.slot_of(1) == 4
        assert rset.slot_of(3) == 2
        rset.check_consistent()

    def test_free_slot_queries(self):
        rset = RemappingSet(slots=4)
        rset.allocate(0, 0)
        rset.allocate(1, 2)
        assert rset.free_slots(0, 4) == [1, 3]
        assert rset.first_free_slot(0, 4) == 1
        assert rset.first_free_slot(0, 1) is None

    def test_table_indexing(self, geometry):
        table = PageRemappingTable(geometry)
        assert len(table) == geometry.sets
        table[0].allocate(1, 1)
        assert table[1].slot_of(1) == UNALLOCATED


class TestRemappingSetProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "move", "swap"]),
                  st.integers(0, 15), st.integers(0, 15)),
        max_size=60))
    def test_inverse_maps_stay_consistent(self, operations):
        """slot_of and occupant remain mutual inverses under any legal
        sequence of allocate / move / swap operations."""
        rset = RemappingSet(slots=16)
        for op, a, b in operations:
            if op == "alloc":
                if not rset.is_allocated(a) and not rset.is_occupied(b):
                    rset.allocate(a, b)
            elif op == "move":
                if rset.is_allocated(a) and not rset.is_occupied(b):
                    rset.move(a, b)
            else:
                if rset.is_allocated(a) and rset.is_allocated(b) and a != b:
                    rset.swap(a, b)
            rset.check_consistent()

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 15), max_size=16))
    def test_allocation_count_matches(self, pages):
        rset = RemappingSet(slots=16)
        for slot, page in enumerate(sorted(pages)):
            rset.allocate(page, slot)
        assert rset.allocated_count() == len(pages)

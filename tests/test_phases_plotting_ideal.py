"""Tests for phase schedules, terminal plotting, and the oracle bound."""

import pytest

from repro.analysis import bar_chart, grouped_bars, heat_strip, sparkline
from repro.baselines import IdealHBMController, make_controller
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import SimulationDriver
from repro.traces import (
    QUADRANTS,
    Phase,
    PhaseSchedule,
    SyntheticSpec,
    markov_phases,
    table2_phases,
    windowed_hit_rates,
    workload_trace,
)

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)


class TestPhaseSchedule:
    def spec(self, name="p", spatial=0.5, temporal=0.5):
        return SyntheticSpec(name, 4 * MIB, spatial, temporal, mpki=16.0)

    def test_total_requests(self):
        schedule = PhaseSchedule(
            phases=[Phase(self.spec(), 100), Phase(self.spec(), 200)],
            cycles=3)
        assert schedule.total_requests == 900
        assert len(list(schedule.generate())) == 900

    def test_boundaries(self):
        schedule = PhaseSchedule(
            phases=[Phase(self.spec(), 100), Phase(self.spec(), 200)],
            cycles=2)
        assert schedule.boundaries() == [100, 300, 400]

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseSchedule(phases=[], cycles=1)
        with pytest.raises(ValueError):
            PhaseSchedule(phases=[Phase(self.spec(), 10)], cycles=0)
        with pytest.raises(ValueError):
            Phase(self.spec(), 0)

    def test_deterministic(self):
        make = lambda: PhaseSchedule(
            phases=[Phase(self.spec(), 300)], cycles=2, seed=9)
        assert list(make().generate()) == list(make().generate())

    def test_phases_share_address_space(self):
        schedule = table2_phases("mcf", requests_per_phase=200)
        addrs = [r.addr for r in schedule.generate()]
        footprint = schedule.phases[0].spec.footprint_bytes
        assert max(addrs) < footprint

    def test_table2_phases_preserve_mpki(self):
        schedule = table2_phases("roms", requests_per_phase=100)
        for phase in schedule.phases:
            assert phase.spec.mpki == 31.9

    def test_table2_phases_walk_quadrants(self):
        schedule = table2_phases("mcf", requests_per_phase=100)
        knobs = [(p.spec.spatial, p.spec.temporal)
                 for p in schedule.phases]
        assert knobs == [QUADRANTS[q] for q in
                         ("S+T+", "S-T+", "S+T-", "S-T-")]

    def test_markov_phase_count(self):
        specs = [self.spec("a"), self.spec("b")]
        schedule = markov_phases(specs, n_phases=7,
                                 requests_per_phase=50)
        assert len(schedule.phases) == 7

    def test_markov_validation(self):
        with pytest.raises(ValueError):
            markov_phases([], 3, 10)
        with pytest.raises(ValueError):
            markov_phases([self.spec()], 3, 10, self_loop=1.5)

    def test_windowed_hit_rates_sample_count(self):
        schedule = PhaseSchedule(
            phases=[Phase(self.spec(temporal=0.9), 2000)], cycles=1)
        controller = make_controller("Bumblebee", HBM, DRAM)
        samples = windowed_hit_rates(controller, schedule, window=500)
        assert len(samples) == 4
        assert all(0.0 <= s <= 1.0 for s in samples)


class TestPlotting:
    def test_bar_chart_contains_labels_and_values(self):
        text = bar_chart({"A": 2.0, "B": 1.0})
        assert "A" in text and "2.00" in text

    def test_bar_chart_scales_to_peak(self):
        text = bar_chart({"A": 2.0, "B": 1.0}, width=10)
        bars = [line.split()[1] for line in text.splitlines()]
        assert len(bars[0]) == 10
        assert len(bars[1]) == 5

    def test_bar_chart_baseline_marker(self):
        text = bar_chart({"A": 2.0, "B": 0.5}, width=10, baseline=1.0)
        assert "|" in text

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"A": -1.0})

    def test_heat_strip_range_label(self):
        text = heat_strip([0.0, 0.5, 1.0])
        assert text.endswith("0.00..1.00")

    def test_heat_strip_downsamples(self):
        text = heat_strip(list(range(100)), width=10)
        strip = text.split("]")[0][1:]
        assert len(strip) == 10

    def test_heat_strip_validation(self):
        with pytest.raises(ValueError):
            heat_strip([])

    def test_grouped_bars_missing_cell(self):
        text = grouped_bars({"X": {"high": 1.0}}, groups=("high", "low"))
        assert "-" in text

    def test_sparkline_compact(self):
        assert sparkline([1, 2, 3]).startswith("[")


class TestIdeal:
    def test_everything_hits(self):
        controller = IdealHBMController(HBM, DRAM)
        result = SimulationDriver().run(
            controller, workload_trace("leela", 2000), workload="leela")
        assert result.hbm_hit_rate == 1.0
        assert result.dram_traffic_bytes == 0

    def test_never_faults(self):
        controller = IdealHBMController(HBM, DRAM)
        from repro.sim import MemoryRequest
        beyond = DRAM.geometry.capacity_bytes * 100
        assert controller.page_fault_penalty_ns(
            MemoryRequest(addr=beyond)) == 0.0

    def test_bounds_real_designs(self):
        trace = workload_trace("mcf", 6000)
        driver = SimulationDriver()
        ideal = driver.run(IdealHBMController(HBM, DRAM), trace,
                           workload="mcf")
        bee = driver.run(make_controller("Bumblebee", HBM, DRAM), trace,
                         workload="mcf")
        assert bee.ipc <= ideal.ipc * 1.02

    def test_factory_builds_ideal(self):
        controller = make_controller("Ideal", HBM, DRAM)
        assert controller.name == "Ideal"
        assert controller.metadata_bytes() == 0

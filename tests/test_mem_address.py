"""Tests for interleaved address decoding."""

import pytest

from repro.mem import AddressMapper, hbm2_config, ddr4_3200_config
from repro.mem.timing import DeviceGeometry


@pytest.fixture
def hbm_mapper():
    return AddressMapper(hbm2_config(64 << 20).geometry)


class TestDecode:
    def test_channel_interleaving_rotates(self, hbm_mapper):
        g = hbm_mapper.geometry
        channels = [hbm_mapper.decode(i * g.interleave_bytes).channel
                    for i in range(g.channels)]
        assert channels == list(range(g.channels))

    def test_same_chunk_same_channel(self, hbm_mapper):
        g = hbm_mapper.geometry
        base = 5 * g.interleave_bytes
        for offset in (0, 1, g.interleave_bytes - 1):
            assert (hbm_mapper.decode(base + offset).channel
                    == hbm_mapper.decode(base).channel)

    def test_wraps_after_all_channels(self, hbm_mapper):
        g = hbm_mapper.geometry
        a = hbm_mapper.decode(0)
        b = hbm_mapper.decode(g.channels * g.interleave_bytes)
        assert a.channel == b.channel

    def test_out_of_range_raises(self, hbm_mapper):
        with pytest.raises(ValueError):
            hbm_mapper.decode(hbm_mapper.geometry.capacity_bytes)
        with pytest.raises(ValueError):
            hbm_mapper.decode(-1)

    def test_bank_rotates_across_rows(self, hbm_mapper):
        g = hbm_mapper.geometry
        # Consecutive rows within one channel land in different banks.
        stride = g.row_bytes * g.channels
        banks = {hbm_mapper.decode(i * stride).bank
                 for i in range(g.banks_per_channel)}
        assert len(banks) == g.banks_per_channel

    def test_column_byte_within_row(self, hbm_mapper):
        decoded = hbm_mapper.decode(100)
        assert 0 <= decoded.column_byte < hbm_mapper.geometry.row_bytes

    def test_decode_deterministic(self, hbm_mapper):
        assert hbm_mapper.decode(12345) == hbm_mapper.decode(12345)

    def test_same_row_helper(self, hbm_mapper):
        assert hbm_mapper.same_row(0, 1)
        g = hbm_mapper.geometry
        assert not hbm_mapper.same_row(0, g.interleave_bytes)


class TestValidation:
    def test_rejects_zero_interleave(self):
        geometry = DeviceGeometry(
            capacity_bytes=1 << 20, channels=2, bus_bits=64,
            banks_per_channel=4, row_bytes=2048, interleave_bytes=0)
        with pytest.raises(ValueError):
            AddressMapper(geometry)

    def test_rejects_uneven_capacity(self):
        geometry = DeviceGeometry(
            capacity_bytes=(1 << 20) + 1, channels=2, bus_bits=64,
            banks_per_channel=4, row_bytes=2048, interleave_bytes=128)
        with pytest.raises(ValueError):
            AddressMapper(geometry)


class TestCoverage:
    def test_every_address_decodes_in_small_device(self):
        """Exhaustive check on a tiny device: decode never raises and all
        channels receive traffic."""
        geometry = DeviceGeometry(
            capacity_bytes=64 * 1024, channels=4, bus_bits=32,
            banks_per_channel=2, row_bytes=1024, interleave_bytes=256)
        mapper = AddressMapper(geometry)
        seen_channels = set()
        for addr in range(0, geometry.capacity_bytes, 64):
            decoded = mapper.decode(addr)
            assert 0 <= decoded.channel < geometry.channels
            assert 0 <= decoded.bank < geometry.banks_per_channel
            seen_channels.add(decoded.channel)
        assert seen_channels == set(range(geometry.channels))

"""Parallel execution, the persistent result cache, and JSONL campaigns.

The contract under test: fanning experiment cells over worker processes,
or loading them from the on-disk cache, must be *bit-identical* to
computing them serially in-process — same floats, same records — and a
corrupted cache entry must be healed by recomputation, never returned.
"""

import dataclasses
import json

import pytest

from repro import ExperimentConfig, ExperimentHarness
from repro.analysis import (
    Campaign,
    ResultCache,
    resolve_jobs,
    run_bumblebee_cells,
    run_design_cells,
    sweep_bumblebee,
)
from repro.analysis.campaign import run_campaign
from repro.baselines import make_controller
from repro.core.config import BumblebeeConfig
from repro.sim.driver import SimulationDriver

FAST = ExperimentConfig(requests=1500, warmup=500,
                        workloads=("leela", "mcf"))

CELLS = [("Bumblebee", "leela"), ("Bumblebee", "mcf"),
         ("Banshee", "leela"), ("Banshee", "mcf")]


class TestParallelIdentical:
    def test_design_cells_bit_identical(self):
        serial = run_design_cells(ExperimentHarness(FAST), CELLS, jobs=1)
        parallel = run_design_cells(ExperimentHarness(FAST), CELLS, jobs=2)
        assert serial == parallel    # frozen dataclasses: exact equality

    def test_duplicates_collapse(self):
        results = run_design_cells(
            ExperimentHarness(FAST),
            [("Banshee", "leela"), ("Banshee", "leela")], jobs=2)
        assert len(results) == 1

    def test_figure7_identical(self):
        variants = ("Bumblebee", "No-HMF")
        serial = ExperimentHarness(FAST).figure7_breakdown(
            variants=variants, workloads=("leela",))
        parallel = ExperimentHarness(FAST).figure7_breakdown(
            variants=variants, workloads=("leela",), jobs=2)
        assert serial == parallel

    def test_sweep_identical(self):
        serial = sweep_bumblebee(ExperimentHarness(FAST),
                                 "hot_queue_dram_entries", [4, 8],
                                 workloads=("leela",))
        parallel = sweep_bumblebee(ExperimentHarness(FAST),
                                   "hot_queue_dram_entries", [4, 8],
                                   workloads=("leela",), jobs=2)
        assert serial == parallel

    def test_bumblebee_cells_page_refit(self):
        cells = [(BumblebeeConfig(page_bytes=128 * 1024), "leela",
                  "bee-128k", 128 * 1024)]
        serial = run_bumblebee_cells(ExperimentHarness(FAST), cells)
        parallel = run_bumblebee_cells(ExperimentHarness(FAST), cells,
                                       jobs=2)
        assert serial == parallel

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestResultCache:
    def test_hit_returns_identical_comparison(self, tmp_path):
        first = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        computed = first.run_design("Bumblebee", "leela")
        second = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        cached = second.run_design("Bumblebee", "leela")
        assert cached == computed
        assert second.cache.hits == 1 and second.cache.misses == 0

    def test_key_covers_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentHarness(FAST, cache=cache).run_design("Banshee", "leela")
        other = dataclasses.replace(FAST, seed=99)
        fresh = ExperimentHarness(other, cache=cache)
        assert fresh.cached_comparison("Banshee", "leela") is None

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        harness = ExperimentHarness(FAST, cache=cache)
        computed = harness.run_design("Bumblebee", "leela")
        key = harness._comparison_key("Bumblebee", "leela")
        entry = tmp_path / f"{key}.json"
        entry.write_text("{ not json at all")
        healed = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        assert healed.run_design("Bumblebee", "leela") == computed
        assert healed.cache.misses == 1

    def test_tampered_record_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        harness = ExperimentHarness(FAST, cache=cache)
        computed = harness.run_design("Bumblebee", "leela")
        key = harness._comparison_key("Bumblebee", "leela")
        entry = tmp_path / f"{key}.json"
        wrapped = json.loads(entry.read_text())
        wrapped["record"]["norm_ipc"] = 99.0    # poison, stale digest
        entry.write_text(json.dumps(wrapped))
        healed = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        result = healed.run_design("Bumblebee", "leela")
        assert result == computed
        assert result.norm_ipc != 99.0

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(ResultCache.key_for(a=1), {"x": 1})
        cache.put(ResultCache.key_for(a=2), {"x": 2})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_bumblebee_cells_share_cache(self, tmp_path):
        cells = [(BumblebeeConfig(), "leela", "bee", None)]
        first = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        computed = run_bumblebee_cells(first, cells)
        second = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        assert run_bumblebee_cells(second, cells) == computed
        assert second.cache.hits == 1


class TestCampaignJsonl:
    def test_appends_one_line_per_cell(self, tmp_path):
        path = tmp_path / "c.jsonl"
        run_campaign(ExperimentHarness(FAST), path, ["Banshee"],
                     ["leela", "mcf"])
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2
        assert all(json.loads(line)["design"] == "Banshee"
                   for line in lines)

    def test_reads_legacy_json_array(self, tmp_path):
        harness = ExperimentHarness(FAST)
        path = tmp_path / "c.json"
        run_campaign(harness, path, ["Banshee"], ["leela"])
        records = [json.loads(l) for l in path.read_text().splitlines()]
        path.write_text(json.dumps(records, indent=1))   # legacy format
        resumed = Campaign(ExperimentHarness(FAST), path)
        assert resumed.completed_cells == 1
        assert resumed.run(["Banshee"], ["leela"]) == 0

    def test_legacy_file_migrates_on_append(self, tmp_path):
        harness = ExperimentHarness(FAST)
        path = tmp_path / "c.json"
        run_campaign(harness, path, ["Banshee"], ["leela"])
        records = [json.loads(l) for l in path.read_text().splitlines()]
        path.write_text(json.dumps(records, indent=1))
        resumed = Campaign(ExperimentHarness(FAST), path)
        resumed.run(["Banshee"], ["mcf"])    # triggers migration + append
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2
        assert {json.loads(l)["workload"] for l in lines} == \
            {"leela", "mcf"}

    def test_truncated_tail_line_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        run_campaign(ExperimentHarness(FAST), path, ["Banshee"],
                     ["leela", "mcf"])
        text = path.read_text()
        path.write_text(text[:text.rindex("{") + 10])   # torn last write
        resumed = Campaign(ExperimentHarness(FAST), path)
        assert resumed.completed_cells == 1

    def test_parallel_campaign_identical(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        run_campaign(ExperimentHarness(FAST), serial,
                     ["Banshee", "Bumblebee"], ["leela", "mcf"])
        parallel = tmp_path / "parallel.jsonl"
        run_campaign(ExperimentHarness(FAST), parallel,
                     ["Banshee", "Bumblebee"], ["leela", "mcf"], jobs=2)

        def records(path):
            # The timing block is observability, not a result — it
            # legitimately differs between runs and is stripped here.
            return sorted(({k: v for k, v in json.loads(l).items()
                            if k != "timing"}
                           for l in path.read_text().splitlines()),
                          key=lambda r: (r["design"], r["workload"]))

        assert records(serial) == records(parallel)


class TestZeroRequestRuns:
    def test_empty_run_reports_zero_not_fabricated(self):
        harness = ExperimentHarness(FAST)
        controller = make_controller("No-HBM", harness.hbm_config,
                                     harness.dram_config)
        result = SimulationDriver().run(controller, [], workload="empty")
        assert result.requests == 0
        assert result.elapsed_ns == 0.0

    def test_empty_run_ipc_raises(self):
        harness = ExperimentHarness(FAST)
        controller = make_controller("No-HBM", harness.hbm_config,
                                     harness.dram_config)
        result = SimulationDriver().run(controller, [], workload="empty")
        with pytest.raises(ValueError, match="no IPC"):
            result.ipc

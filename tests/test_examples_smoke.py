"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable.  Each runs in a subprocess with its smallest workload knobs
where the script accepts arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_ARGS = {
    "quickstart.py": ["leela", "5000"],
    "paper_figures.py": None,            # too heavy for a smoke test
    "locality_explorer.py": [],
    "capacity_pressure.py": [],
    "phase_adaptivity.py": [],
    "multiprogram_mix.py": ["mix-fig1"],
    "characterise_workloads.py": [],
    "warm_checkpoint.py": [],
}


def run_example(name: str, args: list[str],
                timeout: int = 420) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


def test_all_examples_are_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_ARGS), (
        "new example scripts must be added to FAST_ARGS")


@pytest.mark.parametrize(
    "name", [n for n, args in FAST_ARGS.items() if args is not None])
def test_example_runs(name):
    result = run_example(name, FAST_ARGS[name])
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_speedup():
    result = run_example("quickstart.py", ["mcf", "20000"])
    assert result.returncode == 0
    assert "Bumblebee IPC" in result.stdout
    assert "metadata budget" in result.stdout


def test_paper_figures_importable():
    """The heavy script at least parses and imports."""
    result = subprocess.run(
        [sys.executable, "-c",
         "import runpy, sys; sys.argv=['x']; "
         "compile(open('examples/paper_figures.py').read(), 'pf', 'exec')"],
        capture_output=True, text=True,
        cwd=EXAMPLES.parent, timeout=60)
    assert result.returncode == 0, result.stderr

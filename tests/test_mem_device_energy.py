"""Tests for the multi-channel device and the IDD energy model."""

import pytest

from repro.mem import (
    EnergyCounters,
    EnergyModel,
    MemoryDevice,
    ddr4_3200_config,
    hbm2_config,
)


@pytest.fixture
def hbm():
    return MemoryDevice(hbm2_config(64 << 20))


@pytest.fixture
def dram():
    return MemoryDevice(ddr4_3200_config(640 << 20))


class TestDevice:
    def test_access_returns_positive_latency(self, hbm):
        access = hbm.access(0, 64, False, 0.0)
        assert access.latency_ns > 0

    def test_accesses_spread_across_channels(self, hbm):
        g = hbm.config.geometry
        for i in range(g.channels):
            hbm.access(i * g.interleave_bytes, 64, False, 0.0)
        busy = [c.read_bytes for c in hbm.channels]
        assert all(b == 64 for b in busy)

    def test_traffic_aggregates(self, hbm):
        hbm.access(0, 64, False, 0.0)
        hbm.access(512, 64, True, 10.0)
        traffic = hbm.traffic()
        assert traffic.read_bytes == 64
        assert traffic.write_bytes == 64
        assert traffic.total_bytes == 128

    def test_bulk_transfer_stripes_channels(self, hbm):
        hbm.bulk_transfer(0, 64 * 1024, False, 0.0)
        touched = sum(1 for c in hbm.channels if c.read_bytes > 0)
        assert touched == hbm.config.geometry.channels
        assert hbm.traffic().read_bytes == 64 * 1024

    def test_bulk_transfer_zero_bytes_noop(self, hbm):
        done = hbm.bulk_transfer(0, 0, False, 5.0)
        assert done == 5.0
        assert hbm.traffic().total_bytes == 0

    def test_row_buffer_stats_accumulate(self, hbm):
        hbm.access(0, 64, False, 0.0)
        hbm.access(0, 64, False, 100.0)
        stats = hbm.row_buffer_stats()
        assert stats["closed"] == 1
        assert stats["hits"] == 1

    def test_reset_clears_everything(self, hbm):
        hbm.access(0, 64, False, 0.0)
        hbm.reset()
        assert hbm.traffic().total_bytes == 0

    def test_hbm_faster_than_ddr4_unloaded(self, hbm, dram):
        h = hbm.access(0, 64, False, 0.0)
        d = dram.access(0, 64, False, 0.0)
        assert h.latency_ns < d.latency_ns


class TestEnergyModel:
    def test_event_energies_positive(self):
        model = EnergyModel(hbm2_config())
        assert model.activate_pj > 0
        assert model.read_burst_pj > 0
        assert model.write_burst_pj > 0

    def test_write_costs_more_than_read_hbm(self):
        # IDD4W (500mA) > IDD4R (390mA) for the Table I HBM2 part.
        model = EnergyModel(hbm2_config())
        assert model.write_burst_pj > model.read_burst_pj

    def test_breakdown_scales_with_counters(self):
        model = EnergyModel(hbm2_config())
        one = model.breakdown(EnergyCounters(activations=1), 1000.0)
        two = model.breakdown(EnergyCounters(activations=2), 1000.0)
        assert two.activate_pj == pytest.approx(2 * one.activate_pj)

    def test_dynamic_excludes_background(self):
        model = EnergyModel(hbm2_config())
        breakdown = model.breakdown(EnergyCounters(), 1_000_000.0)
        assert breakdown.dynamic_pj == 0.0
        assert breakdown.background_pj > 0

    def test_refresh_count_grows_with_time(self):
        model = EnergyModel(ddr4_3200_config())
        assert model.refresh_count(1e9) > model.refresh_count(1e6)

    def test_device_energy_integration(self):
        device = MemoryDevice(hbm2_config(64 << 20))
        device.access(0, 64, False, 0.0)
        breakdown = device.energy(elapsed_ns=10_000.0)
        assert breakdown.dynamic_pj > 0
        assert breakdown.total_pj > breakdown.dynamic_pj

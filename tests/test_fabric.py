"""Tests of the distributed campaign fabric.

Covers the pure lease table (issue/heartbeat/expiry/quarantine, and
the restart-determinism contract: same seed, same history, same
re-lease order and backoff schedule), the pluggable cache backends
(round trips, torn remote bytes read as misses), the HTTP fault hooks
(drop/delay/5xx/disconnect/partition injected below the routing
layer), and the end-to-end contract: a two-worker in-process fleet
produces a campaign file byte-identical to a serial run, and duplicate
completions add zero rows on RunStore ingest.

The full fleet scenarios — worker SIGKILL, lease expiry under a hung
worker, coordinator restart + --resume, partition-then-heal — run real
subprocesses and live in ``repro chaos --scenarios fleet-...`` (see
:mod:`repro.fabric.chaos`); these tests pin the mechanisms those
scenarios compose.
"""

import dataclasses
import json
import socket
import threading

import pytest

from repro.analysis.campaign import Campaign
from repro.analysis.experiments import ExperimentConfig, ExperimentHarness
from repro.designs import registry
from repro.fabric import (
    BackendResultCache,
    BackendTraceCache,
    FabricClient,
    FabricCoordinator,
    FabricPolicy,
    FabricState,
    FabricUnreachable,
    CoordinatorThread,
    LocalDirBackend,
    run_worker,
)
from repro.fabric.coordinator import unwire_cell, wire_cell
from repro.resilience import FaultSpec, faults
from repro.traces.spec import SystemScale, synthetic_spec

FLEET = ExperimentConfig(requests=600, warmup=150, workloads=("leela",))


def _harness() -> ExperimentHarness:
    return ExperimentHarness(FLEET)


# ---- lease table ----------------------------------------------------------


class TestFabricState:
    def test_leases_issue_in_cell_order(self):
        state = FabricState(["a::x", "b::x", "c::x"], FabricPolicy())
        issued = [state.lease(f"w{i}", 0.0).index for i in range(3)]
        assert issued == [0, 1, 2]
        assert state.lease("w9", 0.0) is None       # nothing left

    def test_heartbeat_extends_expiry_reclaims(self):
        policy = FabricPolicy(lease_s=5.0)
        state = FabricState(["a::x"], policy)
        lease = state.lease("w1", 0.0)
        assert lease.deadline == 5.0
        assert state.heartbeat(lease.lease_id, 4.0)
        assert state.reclaim_expired(6.0) == 0      # extended to 9.0
        assert state.reclaim_expired(9.5) == 1
        assert state.reclaimed == 1
        assert not state.heartbeat(lease.lease_id, 9.6)
        # The cell comes back after its backoff delay, as a new attempt.
        release = state.lease("w2", 20.0)
        assert release is not None
        assert release.attempt == 1

    def test_quarantine_on_distinct_workers(self):
        policy = FabricPolicy(quarantine_workers=2, max_attempts=10)
        state = FabricState(["a::x"], policy)
        lease = state.lease("w1", 0.0)
        assert state.fail("a::x", lease.lease_id, "w1", "boom",
                          1.0) == "pending"
        lease = state.lease("w2", 50.0)
        assert state.fail("a::x", lease.lease_id, "w2", "boom",
                          51.0) == "quarantined"
        assert state.done
        assert state.counts()["quarantined"] == 1

    def test_quarantine_on_attempt_budget(self):
        policy = FabricPolicy(quarantine_workers=99, max_attempts=2)
        state = FabricState(["a::x"], policy)
        lease = state.lease("w1", 0.0)
        assert state.fail("a::x", lease.lease_id, "w1", "boom",
                          1.0) == "pending"
        lease = state.lease("w1", 50.0)
        assert state.fail("a::x", lease.lease_id, "w1", "boom",
                          51.0) == "quarantined"

    def test_duplicate_completions_counted_not_fatal(self):
        state = FabricState(["a::x"], FabricPolicy())
        lease = state.lease("w1", 0.0)
        assert state.complete("a::x", lease.lease_id, 1.0) == "ok"
        assert state.complete("a::x", "stale", 2.0) == "duplicate"
        assert state.complete("ghost::x", "stale", 3.0) == "duplicate"
        assert state.duplicates == 2
        assert state.done

    def test_orphaned_completion_merges_on_arrival(self):
        # An expired lease does not reject the (correct) result.
        state = FabricState(["a::x"], FabricPolicy(lease_s=1.0))
        lease = state.lease("w1", 0.0)
        state.reclaim_expired(2.0)
        assert state.complete("a::x", lease.lease_id, 2.5) == "ok"
        assert state.counts()["done"] == 1

    def test_restart_replays_identical_release_schedule(self):
        # Satellite: same seed, same failure history => a restarted
        # coordinator re-issues cells in the same order with the same
        # backoff spacing.
        policy = FabricPolicy(lease_s=1.0, max_attempts=6, seed=7,
                              quarantine_workers=99)
        def replay():
            state = FabricState(["a::x", "b::x", "c::x"], policy)
            for worker in ("w1", "w2", "w3"):
                state.lease(worker, 0.0)
            state.reclaim_expired(2.0)      # all three expire together
            schedule = [state.next_ready_at()]
            order = []
            while (lease := state.lease("w4", 30.0)) is not None:
                order.append((lease.lease_id, lease.attempt))
                schedule.append(state.next_ready_at())
            return order, schedule
        first = replay()
        second = replay()
        assert first == second
        assert len(first[0]) == 3
        # Jitter is real: per-key delays differ from one another.
        delays = {ready for ready in first[1] if ready is not None}
        assert len(delays) >= 2

    def test_different_seed_different_schedule(self):
        def schedule(seed):
            policy = FabricPolicy(lease_s=1.0, seed=seed,
                                  backoff_base_s=1.0, backoff_cap_s=60.0)
            state = FabricState(["a::x"], policy)
            state.lease("w1", 0.0)
            state.reclaim_expired(2.0)
            return state.next_ready_at()
        assert schedule(1) != schedule(2)


# ---- cell wire format -----------------------------------------------------


class TestWireCell:
    def test_name_round_trip(self):
        design, workload = unwire_cell(wire_cell("Bumblebee", "leela"))
        assert (design, workload) == ("Bumblebee", "leela")

    def test_spec_round_trip(self):
        spec = registry.spec("Bumblebee")
        design, workload = unwire_cell(wire_cell(spec, "mcf"))
        assert design == spec
        assert workload == "mcf"


# ---- cache backends -------------------------------------------------------


class TestCacheBackends:
    def test_local_dir_round_trip(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store", ".json")
        assert backend.get("ab" * 32) is None
        backend.put("ab" * 32, b"payload")
        assert backend.get("ab" * 32) == b"payload"
        assert (tmp_path / "store" / f"{'ab' * 32}.json").exists()

    def test_result_cache_round_trip_and_torn_miss(self, tmp_path):
        backend = LocalDirBackend(tmp_path, ".json")
        cache = BackendResultCache(backend)
        key = "cd" * 32
        assert cache.get(key) is None
        cache.put(key, {"norm_ipc": 1.25, "workload": "leela"})
        assert cache.get(key) == {"norm_ipc": 1.25, "workload": "leela"}
        assert (cache.hits, cache.misses) == (1, 1)
        # A torn concurrent put (valid prefix, truncated) is a miss.
        entry = tmp_path / f"{key}.json"
        entry.write_bytes(entry.read_bytes()[:-10])
        assert cache.get(key) is None
        assert cache.misses == 2

    def test_result_cache_unreachable_backend_is_miss(self):
        class Down:
            def get(self, key):
                raise ConnectionError("gone")
        cache = BackendResultCache(Down())
        assert cache.get("ef" * 32) is None

    def test_trace_cache_round_trip_and_torn_miss(self, tmp_path):
        spec = synthetic_spec("mcf", SystemScale(1 / 256))
        backend = LocalDirBackend(tmp_path, ".trace")
        cache = BackendTraceCache(backend)
        trace = cache.get_or_generate(spec, 2000, 9)
        assert cache.counters()["generated"] == 1
        warm = BackendTraceCache(backend)
        assert warm.get_or_generate(spec, 2000, 9) == trace
        assert warm.counters()["hits"] == 1
        assert warm.counters()["generated"] == 0
        # Truncate the stored payload: reads as a miss, regenerates.
        entry = tmp_path / f"{cache.key_for(spec, 2000, 9)}.trace"
        entry.write_bytes(entry.read_bytes()[:-16])
        torn = BackendTraceCache(backend)
        assert torn.get(spec, 2000, 9) is None
        assert torn.get_or_generate(spec, 2000, 9) == trace


# ---- worker client --------------------------------------------------------


class TestFabricClient:
    def test_unreachable_raises_oserror_subclass(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = FabricClient(f"http://127.0.0.1:{port}", "w0",
                              attempts=2, backoff_base_s=0.001)
        with pytest.raises(FabricUnreachable) as failure:
            client.call("GET", "/config")
        assert isinstance(failure.value, OSError)


# ---- HTTP fault injection -------------------------------------------------


class TestNetworkFaults:
    @pytest.fixture()
    def served(self, tmp_path):
        campaign = Campaign(_harness(), tmp_path / "empty.jsonl",
                            record_timing=False)
        coordinator = FabricCoordinator(campaign, (), ("leela",))
        thread = CoordinatorThread(coordinator)
        url = thread.start()
        yield url
        faults.uninstall()
        thread.stop()

    def test_injected_5xx_exhausts_retry_budget(self, served):
        client = FabricClient(served, "wX", attempts=3,
                              backoff_base_s=0.001, backoff_cap_s=0.01)
        assert client.call("GET", "/status")["finished"] is True
        injector = faults.install(FaultSpec(net_error=1.0,
                                            match="GET /status"))
        with pytest.raises(FabricUnreachable):
            client.call("GET", "/status")
        assert injector.counters["net_error"] == 3

    def test_injected_disconnect_tears_mid_body(self, served):
        client = FabricClient(served, "wX", attempts=3,
                              backoff_base_s=0.001, backoff_cap_s=0.01)
        injector = faults.install(FaultSpec(net_disconnect=1.0,
                                            match="GET /config"))
        with pytest.raises(FabricUnreachable):
            client.call("GET", "/config")
        assert injector.counters["net_disconnect"] == 3

    def test_injected_delay_slows_but_succeeds(self, served):
        client = FabricClient(served, "wX", attempts=3)
        injector = faults.install(FaultSpec(net_delay=1.0,
                                            net_delay_s=0.01,
                                            match="GET /status"))
        assert client.call("GET", "/status")["finished"] is True
        assert injector.counters["net_delay"] >= 1

    def test_partition_budget_drops_then_heals(self, served):
        client = FabricClient(served, "wX", attempts=8,
                              backoff_base_s=0.001, backoff_cap_s=0.01)
        injector = faults.install(FaultSpec(partition_n=2, match="wX"))
        assert client.call("GET", "/status")["finished"] is True
        assert injector.counters["partition"] == 2


# ---- end to end -----------------------------------------------------------


class TestFleetEndToEnd:
    def test_two_workers_match_serial_reference(self, tmp_path):
        designs, workloads = ("Bumblebee", "Banshee"), ("leela",)
        reference = Campaign(_harness(), tmp_path / "ref.jsonl",
                             record_timing=False)
        reference.run(designs, workloads)
        ref_bytes = (tmp_path / "ref.jsonl").read_bytes()

        campaign = Campaign(_harness(), tmp_path / "fleet.jsonl",
                            record_timing=False)
        coordinator = FabricCoordinator(campaign, designs, workloads)
        thread = CoordinatorThread(coordinator)
        url = thread.start()
        try:
            completed = []
            crews = [threading.Thread(
                target=lambda wid=f"w{i}": completed.append(
                    run_worker(url, wid, harness=_harness(),
                               local_caches=True)))
                for i in range(2)]
            for crew in crews:
                crew.start()
            for crew in crews:
                crew.join(timeout=120.0)
        finally:
            thread.stop()
        assert (tmp_path / "fleet.jsonl").read_bytes() == ref_bytes
        assert sum(completed) == len(designs) * len(workloads)
        assert coordinator.finished
        assert ("reclaimed=0 duplicates=0 divergent=0 quarantined=0"
                in coordinator.summary())

    def test_duplicate_completion_adds_zero_rows(self, tmp_path):
        from repro.observatory import RunStore
        campaign = Campaign(_harness(), tmp_path / "dup.jsonl",
                            record_timing=False)
        coordinator = FabricCoordinator(campaign, ("Bumblebee",),
                                        ("leela",))
        thread = CoordinatorThread(coordinator)
        url = thread.start()
        try:
            client = FabricClient(url, "wA")
            reply = client.call("POST", "/lease", {"worker": "wA"})
            comparison = dataclasses.asdict(
                _harness().run_design("Bumblebee", "leela"))
            payload = {"worker": "wA", "lease": reply["lease"],
                       "cell": reply["cell"], "comparison": comparison}
            first = client.call("POST", "/complete", payload)
            second = client.call("POST", "/complete",
                                 dict(payload, worker="wB",
                                      lease="stale"))
        finally:
            thread.stop()
        assert first["status"] == "ok" and first["done"] is True
        assert second["status"] == "duplicate"
        assert coordinator.state.duplicates == 1
        assert coordinator.divergent == 0
        lines = (tmp_path / "dup.jsonl").read_text().splitlines()
        assert len(lines) == 1
        store = RunStore(tmp_path / "runs.db")
        assert store.ingest_jsonl(tmp_path / "dup.jsonl",
                                  source="campaign") == (1, 1)
        # Re-ingest (the duplicate's would-be rows): zero new.
        assert store.ingest_jsonl(tmp_path / "dup.jsonl",
                                  source="campaign") == (0, 1)
        assert store.run_count == 1

    def test_served_file_and_status_routes(self, tmp_path):
        campaign = Campaign(_harness(), tmp_path / "served.jsonl",
                            record_timing=False)
        coordinator = FabricCoordinator(campaign, ("Bumblebee",),
                                        ("leela",))
        thread = CoordinatorThread(coordinator)
        url = thread.start()
        try:
            run_worker(url, "wA", harness=_harness(), local_caches=True)
            client = FabricClient(url, "wB")
            status, data = client.request("GET", "/file")
            state = client.call("GET", "/status")
        finally:
            thread.stop()
        assert status == 200
        assert data == (tmp_path / "served.jsonl").read_bytes()
        assert json.loads(data.splitlines()[0])["design"] == "Bumblebee"
        assert state["finished"] is True
        assert state["cells"] == state["emitted"] == 1

    def test_resume_serves_only_missing_cells(self, tmp_path):
        designs, workloads = ("Bumblebee", "Banshee"), ("leela",)
        path = tmp_path / "resume.jsonl"
        first = Campaign(_harness(), path, record_timing=False)
        first.run(("Bumblebee",), workloads)     # pre-fill one cell
        campaign = Campaign(_harness(), path, record_timing=False)
        coordinator = FabricCoordinator(campaign, designs, workloads)
        assert len(coordinator.pending_cells) == 1   # only Banshee left
        thread = CoordinatorThread(coordinator)
        url = thread.start()
        try:
            completed = run_worker(url, "wA", harness=_harness(),
                                   local_caches=True)
        finally:
            thread.stop()
        assert completed == 1
        reference = Campaign(_harness(), tmp_path / "ref.jsonl",
                             record_timing=False)
        reference.run(designs, workloads)
        assert path.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()

"""Tests of the budgeted Pareto explorer (:mod:`repro.exec.explore`).

The seeded acceptance grid is ``allocation=hbm,dram``: with the HBM
devices modelled here, HBM-preferred allocation empirically dominates
DRAM-preferred on every default objective (higher normalised IPC,
lower HBM traffic multiple, lower energy) on both ``leela`` and
``mcf`` — so the search must prune the dominated point at the first
halving rung and find the true frontier in 3 of the 4 exhaustive
cells, deterministically across repeat runs.
"""

from __future__ import annotations

import pytest

from repro import ExperimentConfig
from repro.cli import main
from repro.designs import registry
from repro.exec import (
    CellPlan,
    ExplorePoint,
    PlanError,
    SerialBackend,
    dominates,
    explore_frontier,
    pareto_frontier,
    parse_objectives,
)

FAST = ExperimentConfig(requests=800, warmup=200,
                        workloads=("leela", "mcf"))
GRID = {"allocation": ["hbm", "dram"]}
OBJECTIVES = parse_objectives("ipc,hbm_traffic,energy")


def point(name, **values):
    return ExplorePoint(spec=name, values=values, workloads=("leela",))


class TestDominance:
    def test_dominates_requires_strictly_better_somewhere(self):
        a = {"ipc": 1.2, "hbm_traffic": 1.0, "energy": 0.5}
        b = {"ipc": 1.0, "hbm_traffic": 2.0, "energy": 1.0}
        assert dominates(a, b, OBJECTIVES)
        assert not dominates(b, a, OBJECTIVES)
        assert not dominates(a, dict(a), OBJECTIVES)

    def test_direction_respects_maximize_flag(self):
        # Higher traffic is worse: a loses on it, so neither dominates.
        a = {"ipc": 1.2, "hbm_traffic": 3.0, "energy": 0.5}
        b = {"ipc": 1.0, "hbm_traffic": 1.0, "energy": 1.0}
        assert not dominates(a, b, OBJECTIVES)
        assert not dominates(b, a, OBJECTIVES)

    def test_pareto_frontier_keeps_nondominated(self):
        points = [
            point("best", ipc=1.2, hbm_traffic=1.0, energy=0.5),
            point("worse", ipc=1.0, hbm_traffic=2.0, energy=1.0),
            point("tradeoff", ipc=1.3, hbm_traffic=4.0, energy=2.0),
        ]
        front = pareto_frontier(points, OBJECTIVES)
        assert [p.spec for p in front] == ["best", "tradeoff"]


class TestObjectiveParsing:
    def test_parses_ordered_subset(self):
        objectives = parse_objectives("energy, ipc")
        assert [o.key for o in objectives] == ["energy", "ipc"]

    def test_rejects_unknown_and_empty(self):
        with pytest.raises(PlanError, match="bogus"):
            parse_objectives("ipc,bogus")
        with pytest.raises(PlanError):
            parse_objectives("")


class TestExploreFrontier:
    def _search(self, tmp_path, name, **kwargs):
        specs = registry.expand_grid("Bumblebee", GRID)
        plan = CellPlan(config=FAST, designs=tuple(specs),
                        workloads=("leela", "mcf"),
                        out=tmp_path / name, record_timing=False,
                        source="explore")
        campaign = plan.open_campaign()
        backend = SerialBackend()
        try:
            return explore_frontier(
                campaign, backend, specs, ["leela", "mcf"],
                objectives=OBJECTIVES, grid=GRID, **kwargs)
        finally:
            backend.close()

    def test_finds_true_frontier_with_fewer_cells(self, tmp_path):
        result = self._search(tmp_path, "e.jsonl")
        assert result.cells_requested == 3 < result.exhaustive_cells
        assert [p.name for p in result.frontier] == \
            ["Bumblebee[allocation=hbm]"]
        pruned = [p for p in result.points if p.pruned_at is not None]
        assert [(p.name, p.pruned_at) for p in pruned] == \
            [("Bumblebee[allocation=dram]", 0)]

    def test_repeat_runs_render_identically(self, tmp_path):
        first = self._search(tmp_path, "a.jsonl").render()
        second = self._search(tmp_path, "b.jsonl").render()
        assert first == second

    def test_budget_below_one_rejected(self, tmp_path):
        with pytest.raises(PlanError, match="--budget"):
            self._search(tmp_path, "e.jsonl", budget=0)

    def test_budget_caps_requested_cells(self, tmp_path):
        result = self._search(tmp_path, "e.jsonl", budget=2)
        assert result.cells_requested <= 2
        assert result.exhausted


class TestExploreCli:
    ARGS = ("--grid", "allocation=hbm,dram",
            "--workloads", "leela", "mcf",
            "--requests", "800", "--warmup", "200", "--no-timing")

    def test_seeded_search_is_deterministic(self, capsys, tmp_path):
        reports = []
        for name in ("one", "two"):
            code = main(["explore", *self.ARGS,
                         "--out", str(tmp_path / f"{name}.jsonl"),
                         "--report", str(tmp_path / f"{name}.txt")])
            assert code == 0
            reports.append((tmp_path / f"{name}.txt").read_text())
        out = capsys.readouterr().out
        assert "3 of 4 exhaustive cells requested" in out
        assert reports[0] == reports[1]
        assert "Bumblebee[allocation=hbm]" in reports[0]
        assert "dominated at rung 0" in reports[0]

    def test_records_into_store_as_explore(self, capsys, tmp_path):
        from repro.observatory import RunStore, render_dashboard
        db = tmp_path / "runs.db"
        code = main(["explore", *self.ARGS,
                     "--out", str(tmp_path / "e.jsonl"),
                     "--db", str(db)])
        assert code == 0
        store = RunStore(db)
        assert store.counts_by_source() == {"explore": 3}
        html = render_dashboard(store)
        assert "explore: norm_ipc" in html

    def test_rejects_unknown_objective(self, capsys, tmp_path):
        code = main(["explore", *self.ARGS,
                     "--out", str(tmp_path / "e.jsonl"),
                     "--objectives", "ipc,bogus"])
        assert code == 2
        assert "bogus" in capsys.readouterr().err

    def test_fabric_url_cannot_drive_adaptive_batches(self, capsys,
                                                      tmp_path):
        code = main(["explore", *self.ARGS,
                     "--out", str(tmp_path / "e.jsonl"),
                     "--fabric", "http://127.0.0.1:1"])
        assert code == 2
        assert "--fabric-serve" in capsys.readouterr().err

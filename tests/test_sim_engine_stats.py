"""Tests for the event engine, statistics machinery, and CPU model."""

import pytest

from repro.sim import CpuModel, EventEngine, Histogram, StatGroup, geomean


class TestEventEngine:
    def test_check_invariants_clean_engine(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda t: None)
        engine.schedule(20.0, lambda t: None)
        assert engine.check_invariants() == []
        engine.advance_to(15.0)
        assert engine.check_invariants() == []

    def test_check_invariants_flags_past_event(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda t: None)
        # Corrupt the clock directly: a live event is now in the past.
        engine._now_ns = 50.0
        violations = engine.check_invariants()
        assert violations
        assert "in the past" in violations[0]

    def test_check_invariants_ignores_cancelled_past_event(self):
        engine = EventEngine()
        event = engine.schedule(10.0, lambda t: None)
        event.cancel()
        engine._now_ns = 50.0
        assert engine.check_invariants() == []

    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(20.0, lambda t: order.append("b"))
        engine.schedule(10.0, lambda t: order.append("a"))
        engine.advance_to(30.0)
        assert order == ["a", "b"]

    def test_same_time_fires_in_insertion_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(10.0, lambda t: order.append(1))
        engine.schedule(10.0, lambda t: order.append(2))
        engine.advance_to(10.0)
        assert order == [1, 2]

    def test_advance_only_fires_due_events(self):
        engine = EventEngine()
        fired = []
        engine.schedule(10.0, lambda t: fired.append(t))
        engine.schedule(50.0, lambda t: fired.append(t))
        assert engine.advance_to(20.0) == 1
        assert fired == [10.0]
        assert engine.pending == 1

    def test_cancel_prevents_firing(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(10.0, lambda t: fired.append(t))
        handle.cancel()
        engine.advance_to(100.0)
        assert fired == []
        assert handle.cancelled

    def test_schedule_in_past_raises(self):
        engine = EventEngine()
        engine.advance_to(100.0)
        with pytest.raises(ValueError):
            engine.schedule(50.0, lambda t: None)

    def test_drain_fires_everything(self):
        engine = EventEngine()
        fired = []
        for t in (5.0, 15.0, 25.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        assert engine.drain() == 3
        assert fired == [5.0, 15.0, 25.0]

    def test_events_can_schedule_events(self):
        engine = EventEngine()
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                engine.schedule(t + 10.0, chain)

        engine.schedule(0.0, chain)
        engine.advance_to(100.0)
        assert fired == [0.0, 10.0, 20.0]


class TestStatGroup:
    def test_autovivifies(self):
        stats = StatGroup("test")
        stats.bump("x")
        stats.bump("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing") == 0

    def test_merge(self):
        a = StatGroup("a")
        b = StatGroup("b")
        a.bump("k", 2)
        b.bump("k", 3)
        a.merge(b)
        assert a.get("k") == 5

    def test_as_dict_snapshot(self):
        stats = StatGroup("s")
        stats.bump("k")
        snapshot = stats.as_dict()
        stats.bump("k")
        assert snapshot == {"k": 1}


class TestHistogram:
    def test_bucketing_matches_fig1_bounds(self):
        hist = Histogram(bounds=[5.0, 10.0, 15.0, 20.0])
        for sample in (1, 7, 12, 17, 30):
            hist.add(sample)
        assert hist.counts == [1, 1, 1, 1, 1]

    def test_fractions_sum_to_one(self):
        hist = Histogram(bounds=[5.0, 10.0])
        for sample in (1, 2, 7, 20):
            hist.add(sample)
        assert sum(hist.fractions()) == pytest.approx(1.0)

    def test_weighting(self):
        hist = Histogram(bounds=[10.0])
        hist.add(5, weight=3)
        assert hist.counts[0] == 3
        assert hist.total == 3

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[10.0, 5.0])

    def test_labels_cover_all_buckets(self):
        hist = Histogram(bounds=[5.0, 10.0])
        assert len(hist.labels()) == 3


class TestHistogramPercentile:
    def test_reports_bucket_upper_bound(self):
        hist = Histogram(bounds=[10.0, 20.0, 30.0])
        for sample in (5, 15, 15, 25):
            hist.add(sample)
        assert hist.percentile(25.0) == 10.0
        assert hist.percentile(50.0) == 20.0
        assert hist.percentile(75.0) == 20.0
        assert hist.percentile(100.0) == 30.0

    def test_overflow_bucket_reports_inf(self):
        hist = Histogram(bounds=[10.0])
        hist.add(5)
        hist.add(999)
        assert hist.percentile(50.0) == 10.0
        assert hist.percentile(100.0) == float("inf")

    def test_matches_linear_rescan(self):
        # The precomputed-cumulative fast path must agree with the
        # O(buckets) definition it replaced, bucket for bucket.
        hist = Histogram(bounds=[1.0, 2.0, 4.0, 8.0, 16.0])
        for sample, weight in ((0.5, 3), (1.5, 1), (3.0, 7), (20.0, 2)):
            hist.add(sample, weight=weight)

        def rescan(percentile):
            target = percentile / 100.0 * hist.total
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                if cumulative >= target:
                    return bound
            return float("inf")

        for pct in (1, 10, 23, 50, 77, 90, 99, 100):
            assert hist.percentile(pct) == rescan(pct)

    def test_cache_invalidated_by_add(self):
        hist = Histogram(bounds=[10.0])
        hist.add(5)
        assert hist.percentile(100.0) == 10.0
        hist.add(50, weight=10)        # overflow now dominates
        assert hist.percentile(100.0) == float("inf")

    def test_rejects_out_of_range(self):
        hist = Histogram(bounds=[10.0])
        hist.add(1)
        for bad in (0.0, -1.0, 100.5):
            with pytest.raises(ValueError):
                hist.percentile(bad)

    def test_empty_histogram_raises(self):
        # Regression: an empty histogram used to silently return
        # bounds[0] (cumulative 0 >= target 0 on the first bucket),
        # reporting a fabricated latency for a run with zero samples.
        hist = Histogram(bounds=[10.0, 20.0])
        with pytest.raises(ValueError, match="empty histogram"):
            hist.percentile(50.0)
        hist.add(5)
        assert hist.percentile(50.0) == 10.0

    def test_cache_invalidated_by_merge(self):
        # Regression: the cumulative cache used a total-based staleness
        # guard; a mutation path that bypassed it served percentiles
        # from the pre-mutation distribution.  Every mutation now
        # invalidates explicitly.
        a = Histogram(bounds=[10.0, 20.0])
        a.add(5, weight=4)
        assert a.percentile(100.0) == 10.0  # primes the cache
        b = Histogram(bounds=[10.0, 20.0])
        b.add(15, weight=4)
        a.merge(b)
        assert a.total == 8
        assert a.percentile(50.0) == 10.0
        assert a.percentile(100.0) == 20.0

    def test_merge_rejects_bound_mismatch(self):
        a = Histogram(bounds=[10.0])
        b = Histogram(bounds=[20.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_interleaved_reads_and_mutations_never_stale(self):
        hist = Histogram(bounds=[1.0, 2.0, 4.0])
        reference: list[tuple[float, int]] = []

        def rescan(percentile):
            target = percentile / 100.0 * hist.total
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                if cumulative >= target:
                    return bound
            return float("inf")

        for sample in (0.5, 3.0, 1.5, 9.0, 0.1, 3.9):
            hist.add(sample)
            reference.append((sample, 1))
            for pct in (25, 50, 75, 100):
                assert hist.percentile(pct) == rescan(pct)


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestCpuModel:
    def test_compute_time_scales_with_cores(self):
        one = CpuModel(cores=1)
        four = CpuModel(cores=4)
        assert one.compute_ns(1000) == pytest.approx(
            4 * four.compute_ns(1000))

    def test_stall_divided_by_mlp(self):
        cpu = CpuModel(mlp=4.0)
        assert cpu.stall_ns(100.0) == pytest.approx(25.0)

    def test_ipc_roundtrip(self):
        cpu = CpuModel(freq_ghz=2.0)
        # 1000 instructions in 500ns at 2GHz = 1000 cycles -> IPC 1.0
        assert cpu.ipc(1000, 500.0) == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CpuModel(freq_ghz=0)
        with pytest.raises(ValueError):
            CpuModel(cores=0)
        with pytest.raises(ValueError):
            CpuModel(mlp=-1)

    def test_cycle_conversions_inverse(self):
        cpu = CpuModel()
        assert cpu.ns_to_cycles(cpu.cycles_to_ns(123.0)) == pytest.approx(
            123.0)

"""Tests for the campaign observatory: store, regression gate, dashboard.

The mixed-era fixture file mirrors real campaign histories: a PR 1-era
record with no ``timing`` block, a legacy string-key record (design
name, no spec dump), and spec-key records carrying full timing — one
file spanning three storage generations.  Both the in-memory campaign
views and the sqlite ingest must agree over it.
"""

from __future__ import annotations

import json

import pytest

from repro import ExperimentConfig, ExperimentHarness, __version__
from repro.analysis import Campaign, run_campaign
from repro.cli import main
from repro.observatory import (
    RunStore,
    check_regression,
    load_golden,
    pin_golden,
    record_hash,
    regression_passed,
    render_dashboard,
    render_regress,
    scalar_metrics,
)
from repro.observatory.store import load_jsonl_records

FAST = ExperimentConfig(requests=1200, warmup=300,
                        workloads=("leela", "mcf"))

#: A PR 1-era record: no timing block, no spec, no config version.
LEGACY_NO_TIMING = {
    "design": "No-HBM", "workload": "leela",
    "norm_ipc": 1.0, "norm_hbm_traffic": 0.0, "norm_energy": 1.0,
    "config": {"requests": 1000, "warmup": 200, "seed": 7,
               "scale": 0.03125},
}

#: A legacy string-key record (plain design name) with timing.
LEGACY_TIMED = {
    "design": "Banshee", "workload": "mcf",
    "norm_ipc": 1.1, "norm_hbm_traffic": 0.8, "norm_energy": 0.9,
    "config": {"requests": 1000, "warmup": 200, "seed": 7,
               "scale": 0.03125, "version": "1.1.0"},
    "timing": {"gen_s": 0.5, "sim_s": 1.5, "trace_hits": 1.0},
}

#: Spec-key records (sweep points) with engine counters in timing.
SPEC_TIMED = [
    {
        "design": f"Bumblebee[chbm_ratio={ratio}]", "workload": "mcf",
        "norm_ipc": 1.2 + index / 10, "norm_hbm_traffic": 1.0,
        "norm_energy": 0.8,
        "spec": {"name": f"Bumblebee[chbm_ratio={ratio}]",
                 "base": "Bumblebee", "params": {"chbm_ratio": ratio}},
        "config": {"requests": 1000, "warmup": 200, "seed": 7,
                   "scale": 0.03125, "version": "1.2.0"},
        "timing": {"gen_s": 0.25, "sim_s": 0.75, "engine_vector": 1.0,
                   "engine_scalar": 0.0, "vector_epochs": 2.0},
    }
    for index, ratio in enumerate((0.25, 0.5))
]

MIXED_ERA = [LEGACY_NO_TIMING, LEGACY_TIMED] + SPEC_TIMED


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


@pytest.fixture()
def mixed_file(tmp_path):
    return write_jsonl(tmp_path / "mixed.jsonl", MIXED_ERA)


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "runs.db")


class TestRunStore:
    def test_ingest_counts_rows_and_metrics(self, store, mixed_file):
        added, seen = store.ingest_jsonl(mixed_file)
        assert (added, seen) == (4, 4)
        assert store.run_count == 4
        assert store.counts_by_source() == {"campaign": 4}
        assert "norm_ipc" in store.metric_names()
        assert "gen_s" in store.metric_names(kind="timing")

    def test_reingest_is_idempotent(self, store, mixed_file):
        store.ingest_jsonl(mixed_file)
        added, seen = store.ingest_jsonl(mixed_file)
        assert (added, seen) == (0, 4)
        assert store.run_count == 4

    def test_query_filters(self, store, mixed_file):
        store.ingest_jsonl(mixed_file)
        assert len(store.query(workload="mcf")) == 3
        assert len(store.query(design="Banshee")) == 1
        assert len(store.query(version="1.2.0")) == 2
        by_source = store.query(source="campaign", limit=2)
        assert len(by_source) == 2
        record = store.query(design="Banshee")[0]
        assert record["_version"] == "1.1.0"
        assert record["norm_ipc"] == 1.1

    def test_spec_records_carry_spec_hash(self, store, mixed_file):
        from repro.designs import DesignSpec
        store.ingest_jsonl(mixed_file)
        record = store.query(version="1.2.0")[0]
        expected = DesignSpec.from_dict(record["spec"]).spec_hash
        assert record["_spec_hash"] == expected
        assert store.query(design="Banshee")[0]["_spec_hash"] is None

    def test_trend_orders_versions_numerically(self, store, tmp_path):
        records = []
        for version in ("1.10.0", "1.2.0", "1.9.1"):
            record = dict(LEGACY_TIMED)
            record["config"] = dict(record["config"], version=version)
            records.append(record)
        store.ingest_jsonl(write_jsonl(tmp_path / "v.jsonl", records))
        rows = store.trend("norm_ipc")
        assert [row["version"] for row in rows] == \
            ["1.2.0", "1.9.1", "1.10.0"]
        assert all(row["mean"] == 1.1 for row in rows)

    def test_matrix_skips_missing_metric(self, store, mixed_file):
        store.ingest_jsonl(mixed_file)
        matrix = store.matrix("norm_ipc")
        assert matrix["No-HBM"]["leela"] == 1.0
        # norm_dram_traffic exists on no record -> empty matrix.
        assert store.matrix("norm_dram_traffic") == {}

    def test_bench_ingest_roundtrip(self, store, tmp_path):
        bench = tmp_path / "BENCH_trace_path.json"
        bench.write_text(json.dumps({
            "kind": "bench", "title": "trace path", "slug": "trace_path",
            "version": "1.2.0", "config": {"requests": 50000},
            "metrics": {"speedup": 9.5, "warm_s": 0.018}}))
        assert store.ingest_path(bench) == (1, 1)
        assert store.ingest_path(bench) == (0, 1)   # idempotent
        record = store.query(source="bench")[0]
        assert record["design"] == "trace_path"
        assert record["speedup"] == 9.5
        rows = store.trend("speedup", source="bench")
        assert rows == [{"version": "1.2.0", "mean": 9.5, "min": 9.5,
                         "max": 9.5, "runs": 1}]

    def test_ingest_directory_recurses(self, store, tmp_path, mixed_file):
        sub = tmp_path / "artifacts"
        sub.mkdir()
        write_jsonl(sub / "a.jsonl", [LEGACY_TIMED])
        (sub / "BENCH_x.json").write_text(json.dumps(
            {"kind": "bench", "slug": "x", "version": "1.0.0",
             "metrics": {"speedup": 2.0}}))
        added, seen = store.ingest_path(sub)
        assert (added, seen) == (2, 2)

    def test_ingest_missing_path_raises(self, store, tmp_path):
        with pytest.raises(FileNotFoundError):
            store.ingest_path(tmp_path / "nope.jsonl")

    def test_record_hash_is_content_stable(self):
        a = {"design": "X", "norm_ipc": 1.0}
        assert record_hash(a) == record_hash(dict(reversed(a.items())))
        assert record_hash(a) != record_hash({**a, "norm_ipc": 1.1})

    def test_scalar_metrics_excludes_identity_and_blocks(self):
        metrics = scalar_metrics(SPEC_TIMED[0])
        assert "norm_ipc" in metrics and "norm_energy" in metrics
        assert not {"design", "workload", "config", "timing",
                    "spec"} & metrics.keys()


class TestMixedEraAgreement:
    """Campaign views and sqlite ingest agree over one mixed-era file.

    This is the satellite contract: ``Campaign.timing_summary`` totals
    (records with no timing block, legacy string-key records, and
    spec-key records in one file) must match the sums of the ingested
    timing rows exactly.
    """

    def test_timing_summary_mixed_eras(self, mixed_file):
        campaign = Campaign(ExperimentHarness(FAST), mixed_file)
        totals = campaign.timing_summary()
        assert totals["cells"] == 3        # no-timing record skipped
        assert totals["gen_s"] == pytest.approx(0.5 + 0.25 + 0.25)
        assert totals["sim_s"] == pytest.approx(1.5 + 0.75 + 0.75)
        assert totals["engine_vector"] == 2.0
        assert totals["vector_epochs"] == 4.0
        assert totals["trace_hits"] == 1.0

    def test_timing_totals_match_sqlite(self, mixed_file, store):
        campaign = Campaign(ExperimentHarness(FAST), mixed_file)
        totals = campaign.timing_summary()
        store.ingest_jsonl(mixed_file)
        for name in ("gen_s", "sim_s", "engine_vector", "vector_epochs",
                     "trace_hits"):
            assert store.metric_sum(name, kind="timing") == \
                pytest.approx(totals[name]), name
        # And the metric columns agree with the records themselves.
        assert store.metric_sum("norm_ipc") == pytest.approx(
            sum(r["norm_ipc"] for r in MIXED_ERA))

    def test_campaign_matrix_skips_and_reports(self, mixed_file):
        campaign = Campaign(ExperimentHarness(FAST), mixed_file)
        # Every record carries norm_ipc: no skips.
        assert campaign.missing_metric_cells("norm_ipc") == 0
        # A metric only some eras carry: skip-and-report, no KeyError.
        matrix = campaign.matrix("overfetch_fraction")
        assert matrix == {}
        assert campaign.missing_metric_cells("overfetch_fraction") == 4
        text = campaign.render("overfetch_fraction")
        assert "available" in text and "norm_ipc" in text
        assert "norm_ipc" in campaign.available_metrics()
        # Identity strings and nested blocks are not metrics.
        assert "design" not in campaign.available_metrics()
        assert "config" not in campaign.available_metrics()

    def test_campaign_render_notes_partial_metric(self, tmp_path):
        partial = [dict(LEGACY_TIMED),
                   {**LEGACY_NO_TIMING, "workload": "mcf"}]
        partial[0]["extra_metric"] = 2.5
        path = write_jsonl(tmp_path / "partial.jsonl", partial)
        campaign = Campaign(ExperimentHarness(FAST), path)
        text = campaign.render("extra_metric")
        assert "Banshee" in text
        assert "1 cell(s) skipped" in text


class TestRegression:
    def golden(self, **kwargs):
        return pin_golden(MIXED_ERA, **kwargs)

    def test_golden_passes_itself(self):
        checks = check_regression(MIXED_ERA, self.golden())
        assert regression_passed(checks)
        assert all(check.passed for check in checks)

    def test_drift_fails(self):
        drifted = [dict(record) for record in MIXED_ERA]
        drifted[1] = {**drifted[1], "norm_ipc": 1.21}
        checks = check_regression(drifted, self.golden())
        assert not regression_passed(checks)
        failing = [check for check in checks
                   if not check.passed and not check.skipped]
        assert len(failing) == 1
        assert failing[0].metric == "norm_ipc"
        assert "Banshee" in failing[0].cell

    def test_tolerance_absorbs_small_drift(self):
        drifted = [dict(record) for record in MIXED_ERA]
        drifted[1] = {**drifted[1], "norm_ipc": 1.1 + 1e-3}
        golden = self.golden(abs_tol=1e-2)
        assert regression_passed(check_regression(drifted, golden))
        tight = self.golden(abs_tol=1e-6, rel_tol=1e-6)
        assert not regression_passed(check_regression(drifted, tight))

    def test_missing_cell_fails(self):
        checks = check_regression(MIXED_ERA[:-1], self.golden())
        assert not regression_passed(checks)
        assert any(check.metric == "(cell)" and not check.passed
                   and not check.skipped for check in checks)

    def test_missing_metric_fails(self):
        stripped = [dict(record) for record in MIXED_ERA]
        del stripped[1]["norm_energy"]
        checks = check_regression(stripped, self.golden())
        assert not regression_passed(checks)
        assert any("missing" in check.measured for check in checks
                   if check.metric == "norm_energy")

    def test_unpinned_cells_skip(self):
        extra = MIXED_ERA + [{**LEGACY_TIMED, "workload": "xz"}]
        checks = check_regression(extra, self.golden())
        assert regression_passed(checks)
        assert any(check.skipped for check in checks)

    def test_config_mismatch_fails(self):
        rewindowed = [
            {**record,
             "config": {**record["config"], "requests": 999}}
            for record in MIXED_ERA]
        checks = check_regression(rewindowed, self.golden())
        assert not regression_passed(checks)
        assert any(check.cell == "config" and not check.passed
                   for check in checks)

    def test_render_and_exit_contract(self):
        checks = check_regression(MIXED_ERA, self.golden())
        text = render_regress(checks)
        assert "[PASS]" in text and "0 fail" in text

    def test_pin_rejects_empty(self):
        with pytest.raises(ValueError):
            pin_golden([])

    def test_golden_roundtrip_and_kind_check(self, tmp_path):
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(self.golden()))
        loaded = load_golden(path)
        assert loaded["pinned_with"] == __version__
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError):
            load_golden(bad)


class TestDashboard:
    def test_renders_matrices_trends_and_na(self, store, tmp_path):
        records = [dict(record) for record in MIXED_ERA]
        # Leave a hole: Banshee never ran leela -> n/a cell.
        store.ingest_jsonl(write_jsonl(tmp_path / "m.jsonl", records))
        html = render_dashboard(store)
        assert "<!doctype html>" in html
        assert "norm_ipc" in html and "Banshee" in html
        assert "n/a" in html
        assert "<svg" in html and "polyline" in html
        assert "table view" in html

    def test_empty_store_renders(self, store):
        html = render_dashboard(store)
        assert "0 runs" in html

    def test_html_escapes_names(self, store, tmp_path):
        record = {**LEGACY_TIMED, "design": "X<script>alert(1)</script>"}
        store.ingest_jsonl(write_jsonl(tmp_path / "e.jsonl", [record]))
        html = render_dashboard(store)
        assert "<script>" not in html


class TestCampaignIngestHook:
    def test_on_the_fly_rows_match_file(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        harness = ExperimentHarness(FAST)
        path = tmp_path / "camp.jsonl"
        campaign = Campaign(harness, path, store=store)
        campaign.run(["No-HBM", "Bumblebee"], ["leela"])
        assert store.run_count == 2
        # The file re-ingested on top adds nothing: same records.
        assert store.ingest_jsonl(path) == (0, 2)
        # Stored metrics agree with the file's records.
        for record in load_jsonl_records(path):
            stored = store.query(design=record["design"])[0]
            assert scalar_metrics(stored) == scalar_metrics(record)
            assert stored["_version"] == __version__

    def test_records_stamp_package_version(self, tmp_path):
        harness = ExperimentHarness(FAST)
        run_campaign(harness, tmp_path / "c.jsonl", ["No-HBM"], ["leela"])
        record = load_jsonl_records(tmp_path / "c.jsonl")[0]
        assert record["config"]["version"] == __version__


class TestCli:
    def run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.fixture()
    def ingested(self, tmp_path, mixed_file):
        db = tmp_path / "runs.db"
        code = main(["db", "ingest", str(mixed_file), "--db", str(db)])
        assert code == 0
        return db

    def test_ingest_reports_counts(self, capsys, tmp_path, mixed_file):
        db = tmp_path / "runs.db"
        code, out, _ = self.run(capsys, "db", "ingest", str(mixed_file),
                                "--db", str(db))
        assert code == 0
        assert "4 new / 4 records" in out
        code, out, _ = self.run(capsys, "db", "ingest", str(mixed_file),
                                "--db", str(db))
        assert "0 new / 4 records" in out

    def test_ingest_missing_path_exits_2(self, capsys, tmp_path):
        code, _, err = self.run(capsys, "db", "ingest",
                                str(tmp_path / "ghost.jsonl"),
                                "--db", str(tmp_path / "runs.db"))
        assert code == 2
        assert "ghost" in err

    def test_query_renders_na_for_missing_metric(self, capsys, tmp_path,
                                                 ingested):
        code, out, _ = self.run(capsys, "db", "query", "--db",
                                str(ingested), "--metric",
                                "overfetch_fraction")
        assert code == 0
        assert "n/a" in out and "4 run(s) matched" in out

    def test_trend_unknown_metric_exits_2(self, capsys, ingested):
        code, _, err = self.run(capsys, "db", "trend", "--db",
                                str(ingested), "--metric", "bogus")
        assert code == 2
        assert "norm_ipc" in err

    def test_trend_table(self, capsys, ingested):
        code, out, _ = self.run(capsys, "db", "trend", "--db",
                                str(ingested), "--metric", "norm_ipc")
        assert code == 0
        assert "1.1.0" in out and "1.2.0" in out

    def test_pin_and_regress_cycle(self, capsys, tmp_path, mixed_file):
        golden = tmp_path / "golden.json"
        code, out, _ = self.run(capsys, "db", "pin", str(mixed_file),
                                "--golden", str(golden))
        assert code == 0 and "pinned 4 cells" in out
        code, out, _ = self.run(capsys, "db", "regress",
                                str(mixed_file), "--golden", str(golden))
        assert code == 0 and "0 fail" in out
        drifted = [dict(record) for record in MIXED_ERA]
        drifted[0] = {**drifted[0], "norm_ipc": 2.0}
        drift_file = write_jsonl(tmp_path / "drift.jsonl", drifted)
        code, out, _ = self.run(capsys, "db", "regress",
                                str(drift_file), "--golden", str(golden))
        assert code == 1 and "[FAIL]" in out

    def test_regress_bad_golden_exits_2(self, capsys, tmp_path,
                                        mixed_file):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code, _, err = self.run(capsys, "db", "regress", str(mixed_file),
                                "--golden", str(bad))
        assert code == 2
        assert "repro-golden" in err

    def test_dashboard_writes_html(self, capsys, tmp_path, ingested):
        out_file = tmp_path / "dash.html"
        code, out, _ = self.run(capsys, "db", "dashboard", "--db",
                                str(ingested), "--out", str(out_file))
        assert code == 0
        assert "<svg" in out_file.read_text()

    def test_campaign_unknown_metric_exits_2(self, capsys, tmp_path):
        code, _, err = self.run(
            capsys, "campaign", "--designs", "No-HBM", "--workloads",
            "leela", "--requests", "900", "--warmup", "200",
            "--out", str(tmp_path / "c.jsonl"), "--metric", "bogus")
        assert code == 2
        assert "norm_ipc" in err

    def test_sweep_db_records_cells(self, capsys, tmp_path):
        db = tmp_path / "runs.db"
        code, out, _ = self.run(
            capsys, "sweep", "--grid", "chbm_ratio=0,0.5",
            "--workloads", "leela", "--requests", "900", "--warmup",
            "200", "--out", str(tmp_path / "s.jsonl"), "--db", str(db))
        assert code == 0
        store = RunStore(db)
        assert store.run_count == 2
        assert store.counts_by_source() == {"sweep": 2}

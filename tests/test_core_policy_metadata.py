"""Tests for the pure movement-decision policy and the metadata model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BumblebeeConfig,
    MovementAction,
    SetCondition,
    decide_dram_access,
    derive_geometry,
    metadata_sizes,
    should_swap,
    should_switch_to_mhbm,
    spatial_locality,
)
from repro.core.metadata import (
    SRAM_BUDGET_BYTES,
    alloy_metadata_bytes,
    banshee_metadata_bytes,
    chameleon_metadata_bytes,
    hybrid2_metadata_bytes,
    unison_metadata_bytes,
)

GIB = 1 << 30


def condition(sl=0, rh=1.0, hotness=0, threshold=0):
    return SetCondition(sl=sl, rh=rh, hotness=hotness, threshold=threshold)


class TestSpatialLocality:
    def test_equation_one(self):
        assert spatial_locality(na=5, nn=2, nc=1) == 2

    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8))
    def test_bounded_by_ways(self, na, nn, nc):
        assert abs(spatial_locality(na, nn, nc)) <= na + nn + nc or \
            spatial_locality(na, nn, nc) == na - nn - nc


class TestDecideDramAccess:
    def test_strong_spatial_low_rh_migrates(self):
        assert decide_dram_access(condition(sl=1, rh=0.5)) \
            is MovementAction.MIGRATE

    def test_weak_spatial_low_rh_caches(self):
        assert decide_dram_access(condition(sl=0, rh=0.5)) \
            is MovementAction.CACHE_BLOCK

    def test_high_rh_requires_hotness(self):
        cold = condition(sl=1, rh=1.0, hotness=2, threshold=5)
        assert decide_dram_access(cold) is MovementAction.NONE
        hot = condition(sl=1, rh=1.0, hotness=6, threshold=5)
        assert decide_dram_access(hot) is MovementAction.MIGRATE

    def test_high_rh_weak_spatial_hot_caches(self):
        hot = condition(sl=-1, rh=1.0, hotness=6, threshold=5)
        assert decide_dram_access(hot) is MovementAction.CACHE_BLOCK

    def test_no_fallback_when_adaptive(self):
        # Weak spatial but caching disallowed: adaptive mode does nothing.
        c = condition(sl=-1, rh=0.5)
        assert decide_dram_access(c, chbm_allowed=False) \
            is MovementAction.NONE

    def test_fallback_migrates_when_hot(self):
        c = condition(sl=-1, rh=0.5, hotness=3, threshold=1)
        assert decide_dram_access(c, chbm_allowed=False,
                                  allow_fallback=True) \
            is MovementAction.MIGRATE

    def test_fallback_still_hotness_gated(self):
        c = condition(sl=-1, rh=0.5, hotness=1, threshold=1)
        assert decide_dram_access(c, chbm_allowed=False,
                                  allow_fallback=True) \
            is MovementAction.NONE

    def test_fallback_caches_when_mhbm_unavailable(self):
        c = condition(sl=1, rh=0.5, hotness=3, threshold=1)
        assert decide_dram_access(c, mhbm_allowed=False,
                                  allow_fallback=True) \
            is MovementAction.CACHE_BLOCK

    def test_nothing_allowed_is_none(self):
        c = condition(sl=1, rh=0.0, hotness=9, threshold=0)
        assert decide_dram_access(c, chbm_allowed=False,
                                  mhbm_allowed=False,
                                  allow_fallback=True) \
            is MovementAction.NONE

    @settings(max_examples=100, deadline=None)
    @given(st.integers(-8, 8), st.floats(0.0, 1.0), st.integers(0, 255),
           st.integers(0, 255), st.booleans(), st.booleans(), st.booleans())
    def test_never_returns_disallowed_action(self, sl, rh, hot, thr,
                                             chbm, mhbm, fallback):
        action = decide_dram_access(condition(sl, rh, hot, thr),
                                    chbm_allowed=chbm, mhbm_allowed=mhbm,
                                    allow_fallback=fallback)
        if action is MovementAction.MIGRATE:
            assert mhbm
        if action is MovementAction.CACHE_BLOCK:
            assert chbm


class TestSwitchAndSwap:
    def test_switch_requires_most_blocks(self):
        assert should_switch_to_mhbm(16, most_blocks_threshold=16)
        assert not should_switch_to_mhbm(15, most_blocks_threshold=16)

    def test_static_partitions_never_switch(self):
        assert not should_switch_to_mhbm(32, 16, adaptive=False)

    def test_swap_strictly_hotter(self):
        assert should_swap(hotness=5, coldest_counter=4)
        assert not should_swap(hotness=4, coldest_counter=4)


class TestMetadataModel:
    def test_paper_scale_budget(self):
        """At 1GB/10GB with the paper's best config, the model lands in
        the paper's few-hundred-KB range and fits 512KB SRAM."""
        config = BumblebeeConfig()
        geometry = derive_geometry(config, 1 * GIB, 10 * GIB)
        sizes = metadata_sizes(config, geometry)
        assert 200 * 1024 < sizes.total_bytes < 512 * 1024
        assert sizes.fits_sram()

    def test_component_ordering_matches_paper(self):
        """Paper: 110KB PRT / 136KB BLE / 88KB hotness — BLE largest,
        hotness smallest."""
        config = BumblebeeConfig()
        geometry = derive_geometry(config, 1 * GIB, 10 * GIB)
        sizes = metadata_sizes(config, geometry)
        assert sizes.ble_bytes > sizes.hotness_bytes
        assert sizes.prt_bytes > sizes.hotness_bytes

    def test_smaller_blocks_cost_more_metadata(self):
        geometry_args = (1 * GIB, 10 * GIB)
        small = metadata_sizes(BumblebeeConfig(block_bytes=1024),
                               derive_geometry(
                                   BumblebeeConfig(block_bytes=1024),
                                   *geometry_args))
        large = metadata_sizes(BumblebeeConfig(block_bytes=4096),
                               derive_geometry(
                                   BumblebeeConfig(block_bytes=4096),
                                   *geometry_args))
        assert small.total_bytes > large.total_bytes

    def test_orders_of_magnitude_below_prior_designs(self):
        """The paper's 1-2 orders-of-magnitude claim."""
        config = BumblebeeConfig()
        geometry = derive_geometry(config, 1 * GIB, 10 * GIB)
        bumblebee = metadata_sizes(config, geometry).total_bytes
        assert hybrid2_metadata_bytes(1 * GIB, 10 * GIB) > 10 * bumblebee
        assert alloy_metadata_bytes(1 * GIB) > 10 * bumblebee

    def test_prior_designs_exceed_sram(self):
        assert hybrid2_metadata_bytes(1 * GIB, 10 * GIB) > SRAM_BUDGET_BYTES
        assert alloy_metadata_bytes(1 * GIB) > SRAM_BUDGET_BYTES
        assert chameleon_metadata_bytes(1 * GIB, 10 * GIB) \
            > SRAM_BUDGET_BYTES

    def test_all_models_positive(self):
        assert unison_metadata_bytes(1 * GIB) > 0
        assert banshee_metadata_bytes(1 * GIB, 10 * GIB) > 0


class TestBumblebeeConfig:
    def test_defaults_match_paper_best(self):
        config = BumblebeeConfig()
        assert config.page_bytes == 64 * 1024
        assert config.block_bytes == 2 * 1024
        assert config.hbm_ways == 8
        assert config.hot_queue_dram_entries == 8
        assert config.blocks_per_page == 32
        assert config.most_blocks_threshold == 13  # ceil(32 * 0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BumblebeeConfig(page_bytes=65536, block_bytes=3000)
        with pytest.raises(ValueError):
            BumblebeeConfig(block_bytes=96)
        with pytest.raises(ValueError):
            BumblebeeConfig(fixed_chbm_ways=9)
        with pytest.raises(ValueError):
            BumblebeeConfig(most_blocks_fraction=0.0)

"""Property-based round-trip tests: address interleaving, packed trace
encoding, and the vectorized batch decode are exact inverses (or exact
mirrors) across their whole domains."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    ddr4_3200_config,
    ddr5_4800_config,
    hbm2_config,
    hbm3_config,
)
from repro.mem.address import AddressMapper, DecodedAddress
from repro.sim.request import CACHE_LINE_BYTES
from repro.sim.stats import Histogram
from repro.sim.vectorized import decode_epoch
from repro.traces.packed import (
    ICOUNT_MAX,
    LINE_MAX,
    PackedTrace,
    decode_value,
    encode_request,
)

MIB = 1 << 20
CONFIGS = [hbm2_config, ddr4_3200_config, hbm3_config, ddr5_4800_config]
CAPACITIES = [4 * MIB, 8 * MIB, 40 * MIB]


class TestAddressRoundTrip:
    @pytest.mark.parametrize("make_config", CONFIGS)
    @pytest.mark.parametrize("capacity", CAPACITIES)
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_encode_inverts_decode(self, make_config, capacity, data):
        """decode -> encode reproduces every in-range address exactly."""
        mapper = AddressMapper(make_config(capacity).geometry)
        addr = data.draw(st.integers(0, capacity - 1))
        decoded = mapper.decode(addr)
        assert mapper.encode(decoded) == addr

    @pytest.mark.parametrize("make_config", CONFIGS)
    def test_boundary_addresses(self, make_config):
        capacity = 8 * MIB
        mapper = AddressMapper(make_config(capacity).geometry)
        g = mapper.geometry
        boundaries = {0, 1, capacity - 1,
                      g.interleave_bytes - 1, g.interleave_bytes,
                      g.row_bytes - 1, g.row_bytes,
                      capacity - g.interleave_bytes}
        for addr in boundaries:
            assert mapper.encode(mapper.decode(addr)) == addr

    @pytest.mark.parametrize("make_config", CONFIGS)
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_decode_inverts_encode(self, make_config, data):
        """Any legal coordinate tuple round-trips through the flat
        address space (the mapping is a bijection, not just injective)."""
        g = make_config(8 * MIB).geometry
        mapper = AddressMapper(g)
        rows = 8 * MIB // g.channels // g.banks_per_channel // g.row_bytes
        decoded = DecodedAddress(
            channel=data.draw(st.integers(0, g.channels - 1)),
            bank=data.draw(st.integers(0, g.banks_per_channel - 1)),
            row=data.draw(st.integers(0, rows - 1)),
            column_byte=data.draw(st.integers(0, g.row_bytes - 1)))
        assert mapper.decode(mapper.encode(decoded)) == decoded

    def test_encode_rejects_out_of_range(self):
        mapper = AddressMapper(hbm2_config(8 * MIB).geometry)
        g = mapper.geometry
        with pytest.raises(ValueError):
            mapper.encode(DecodedAddress(channel=g.channels, bank=0,
                                         row=0, column_byte=0))
        with pytest.raises(ValueError):
            mapper.encode(DecodedAddress(channel=0, bank=0, row=0,
                                         column_byte=g.row_bytes))


class TestPackedRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(line=st.integers(0, LINE_MAX),
           is_write=st.booleans(),
           icount=st.integers(0, ICOUNT_MAX))
    def test_request_roundtrip(self, line, is_write, icount):
        addr = line * CACHE_LINE_BYTES
        value = encode_request(addr, is_write, icount)
        assert 0 <= value < (1 << 64)  # fits an array('Q') slot
        assert decode_value(value) == (addr, is_write, icount)

    @pytest.mark.parametrize("line", [0, 1, LINE_MAX - 1, LINE_MAX])
    @pytest.mark.parametrize("icount", [0, 1, ICOUNT_MAX - 1, ICOUNT_MAX])
    @pytest.mark.parametrize("is_write", [False, True])
    def test_bit_budget_boundaries(self, line, icount, is_write):
        """The extreme corners of every packed field survive exactly —
        no field bleeds into a neighbour's bits."""
        addr = line * CACHE_LINE_BYTES
        value = encode_request(addr, is_write, icount)
        assert decode_value(value) == (addr, is_write, icount)

    def test_out_of_budget_rejected(self):
        with pytest.raises(ValueError):
            encode_request((LINE_MAX + 1) * CACHE_LINE_BYTES, False, 1)
        with pytest.raises(ValueError):
            encode_request(0, False, ICOUNT_MAX + 1)
        with pytest.raises(ValueError):
            encode_request(CACHE_LINE_BYTES + 1, False, 1)


_REQUEST = st.tuples(st.integers(0, LINE_MAX), st.booleans(),
                     st.integers(0, ICOUNT_MAX))


def _pack(requests):
    return PackedTrace(array("Q", [
        encode_request(line * CACHE_LINE_BYTES, is_write, icount)
        for line, is_write, icount in requests]))


class TestBatchDecode:
    @settings(max_examples=100, deadline=None)
    @given(requests=st.lists(_REQUEST, min_size=1, max_size=64),
           data=st.data())
    def test_batch_decode_matches_scalar(self, requests, data):
        """Any epoch window of the numpy decode equals per-value
        ``decode_value`` — same addresses, flags, and icounts."""
        trace = _pack(requests)
        start = data.draw(st.integers(0, len(trace) - 1))
        stop = data.draw(st.integers(start + 1, len(trace)))
        addr, is_write, icount = decode_epoch(trace, start, stop)
        expected = [decode_value(value)
                    for value in trace.data[start:stop]]
        assert list(zip(addr.tolist(), is_write.tolist(),
                        icount.tolist())) == expected

    @pytest.mark.parametrize("line", [0, 1, LINE_MAX - 1, LINE_MAX])
    @pytest.mark.parametrize("icount", [0, 1, ICOUNT_MAX - 1, ICOUNT_MAX])
    @pytest.mark.parametrize("is_write", [False, True])
    def test_bit_budget_corners(self, line, icount, is_write):
        """The extreme packed-field corners survive the uint64 ->
        int64 casts of the batch decode without sign or width loss."""
        trace = _pack([(line, is_write, icount)])
        addr, write_arr, icount_arr = decode_epoch(trace)
        assert (int(addr[0]), bool(write_arr[0]), int(icount_arr[0])) \
            == (line * CACHE_LINE_BYTES, is_write, icount)


class TestHistogramAddMany:
    BOUNDS = [10.0, 20.0, 50.0, 100.0]

    @settings(max_examples=100, deadline=None)
    @given(samples=st.lists(
        st.one_of(st.floats(0.0, 200.0, allow_nan=False),
                  st.sampled_from([10.0, 20.0, 50.0, 100.0])),
        max_size=64))
    def test_add_many_equals_repeated_add(self, samples):
        """Bulk binning lands every sample — including values exactly
        on a bucket bound — in the same bucket as scalar ``add``."""
        one_by_one = Histogram(bounds=list(self.BOUNDS))
        for sample in samples:
            one_by_one.add(sample)
        bulk = Histogram(bounds=list(self.BOUNDS))
        bulk.add_many(samples)
        assert bulk == one_by_one
        assert bulk.total == len(samples)

    @settings(max_examples=50, deadline=None)
    @given(weighted=st.lists(
        st.tuples(st.floats(0.0, 200.0, allow_nan=False),
                  st.integers(0, 5)),
        max_size=32))
    def test_weighted_add_many(self, weighted):
        one_by_one = Histogram(bounds=list(self.BOUNDS))
        for sample, weight in weighted:
            for _ in range(weight):
                one_by_one.add(sample)
        bulk = Histogram(bounds=list(self.BOUNDS))
        bulk.add_many([s for s, _ in weighted],
                      weights=[w for _, w in weighted])
        assert bulk == one_by_one

    def test_weight_shape_mismatch_rejected(self):
        histogram = Histogram(bounds=list(self.BOUNDS))
        with pytest.raises(ValueError):
            histogram.add_many([1.0, 2.0], weights=[1])

"""The packed trace engine: encoding, the on-disk trace cache, and the
driver's zero-allocation replay path.

The contract under test mirrors ``tests/test_parallel.py``'s: packed
streams must be *bit-identical* to the object streams they replace —
same addresses, same write flags, same icounts, and therefore exactly
equal :class:`SimResult`s on every baseline design — across processes,
across the on-disk cache, and across the replay fast path.
"""

import dataclasses
import hashlib
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import ExperimentConfig, ExperimentHarness
from repro.analysis.resultcache import ResultCache
from repro.baselines import FIGURE8_DESIGNS, make_controller
from repro.sim.driver import SimResult, SimulationDriver
from repro.sim.request import CACHE_LINE_BYTES, MemoryRequest, MutableRequest
from repro.traces import (
    SyntheticTraceGenerator,
    TraceCache,
    phase_shift_trace,
    synthetic_spec,
)
from repro.traces.packed import (
    ICOUNT_MAX,
    PackedTrace,
    decode_value,
    encode_request,
)
from repro.traces.spec import SystemScale

FAST = ExperimentConfig(requests=1500, warmup=500,
                        workloads=("leela", "mcf"))
SPEC = synthetic_spec("mcf", SystemScale(1 / 256))
N = 3000


class TestEncoding:
    def test_roundtrip(self):
        for addr, is_write, icount in ((0, False, 0),
                                       (64, True, 1),
                                       (1 << 30, False, ICOUNT_MAX)):
            assert decode_value(encode_request(addr, is_write, icount)) \
                == (addr, is_write, icount)

    def test_rejects_unrepresentable(self):
        with pytest.raises(ValueError):
            encode_request(13, False, 1)          # unaligned address
        with pytest.raises(ValueError):
            encode_request(64, False, ICOUNT_MAX + 1)
        with pytest.raises(ValueError):
            encode_request(-64, False, 1)

    def test_from_requests_rejects_odd_size(self):
        odd = MemoryRequest(addr=0, is_write=False, icount=1,
                            size=CACHE_LINE_BYTES * 2)
        with pytest.raises(ValueError):
            PackedTrace.from_requests([odd])

    def test_bytes_roundtrip(self):
        packed = SyntheticTraceGenerator(SPEC, seed=7).generate_packed(N)
        clone = PackedTrace.frombytes(packed.tobytes())
        assert clone == packed
        assert len(clone) == N
        assert clone.nbytes == 8 * N

    def test_frombytes_rejects_truncated_payload(self):
        payload = SyntheticTraceGenerator(SPEC, seed=7) \
            .generate_packed(4).tobytes()
        for cut in (1, 7, 9, len(payload) - 3):
            with pytest.raises(ValueError, match="multiple of 8"):
                PackedTrace.frombytes(payload[:cut])
        assert len(PackedTrace.frombytes(payload[:16])) == 2


class TestGeneratorIdentity:
    def test_packed_matches_object_stream(self):
        objects = SyntheticTraceGenerator(SPEC, seed=11).generate(N)
        packed = SyntheticTraceGenerator(SPEC, seed=11).generate_packed(N)
        assert [(r.addr, r.is_write, r.icount) for r in objects] \
            == list(packed.iter_decoded())
        assert PackedTrace.from_requests(objects) == packed

    def test_iter_yields_equal_requests(self):
        packed = SyntheticTraceGenerator(SPEC, seed=11).generate_packed(50)
        assert list(packed) == packed.to_requests()

    def test_replay_reuses_one_request(self):
        packed = SyntheticTraceGenerator(SPEC, seed=3).generate_packed(100)
        seen_ids = {id(request) for request in packed.replay()}
        assert len(seen_ids) == 1          # the zero-allocation contract

    def test_mutable_request_freeze(self):
        request = MutableRequest(addr=128, is_write=True, icount=9)
        frozen = request.freeze()
        assert frozen == MemoryRequest(addr=128, is_write=True, icount=9)
        assert request.line == frozen.line

    def test_phase_shift_trace_streams_generator_prefixes(self):
        from repro.traces import derive_seed
        spec_b = synthetic_spec("leela", SystemScale(1 / 256))
        streamed = list(phase_shift_trace(SPEC, spec_b, n_per_phase=200,
                                          phases=2, seed=5))
        expected = []
        for phase, spec in enumerate((SPEC, spec_b)):
            expected.extend(SyntheticTraceGenerator(
                spec, seed=derive_seed("phase-shift", 5, phase)
            ).generate(200))
        assert streamed == expected


class TestSimResultIdentity:
    def test_every_design_bit_identical(self):
        """Packed replay == object path for all of repro.baselines."""
        config = ExperimentConfig(requests=1200, warmup=400,
                                  workloads=("mcf",))
        harness = ExperimentHarness(config)
        spec = synthetic_spec("mcf", config.scale)
        n = config.requests + config.warmup
        objects = SyntheticTraceGenerator(spec,
                                          seed=config.seed).generate(n)
        packed = SyntheticTraceGenerator(
            spec, seed=config.seed).generate_packed(n)
        driver = SimulationDriver(config.cpu)
        for design in list(FIGURE8_DESIGNS) + ["No-HBM"]:
            from_objects = driver.run(
                make_controller(design, harness.hbm_config,
                                harness.dram_config,
                                sram_bytes=config.scale.sram_bytes),
                objects, workload="mcf", warmup=config.warmup)
            from_packed = driver.run(
                make_controller(design, harness.hbm_config,
                                harness.dram_config,
                                sram_bytes=config.scale.sram_bytes),
                packed, workload="mcf", warmup=config.warmup)
            assert from_objects == from_packed, design

    def test_simresult_record_roundtrip(self):
        harness = ExperimentHarness(FAST)
        result = harness.baseline("leela")
        clone = SimResult.from_record(
            json.loads(json.dumps(result.to_record())))
        assert clone == result

    def test_baseline_persisted_and_reloaded(self, tmp_path):
        first = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        computed = first.baseline("leela")
        second = ExperimentHarness(FAST, cache=ResultCache(tmp_path))
        assert second.baseline("leela") == computed
        assert second.cache.hits == 1    # no re-simulation happened


class TestTraceCache:
    def test_miss_then_hit(self, tmp_path):
        cache = TraceCache(tmp_path)
        first = cache.get_or_generate(SPEC, N, 9)
        second = cache.get_or_generate(SPEC, N, 9)
        assert first == second
        assert cache.counters()["generated"] == 1
        assert cache.counters()["misses"] == 1
        assert cache.counters()["hits"] == 1
        assert cache.counters()["bytes_read"] == 8 * N
        assert len(cache) == 1

    def test_key_covers_every_input(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_generate(SPEC, N, 9)
        cache.get_or_generate(SPEC, N, 10)          # seed changes key
        cache.get_or_generate(SPEC, N + 1, 9)       # length changes key
        other = dataclasses.replace(SPEC, write_fraction=0.9)
        cache.get_or_generate(other, N, 9)          # spec changes key
        assert len(cache) == 4
        assert cache.counters()["generated"] == 4

    def test_corrupt_entry_healed(self, tmp_path):
        cache = TraceCache(tmp_path)
        original = cache.get_or_generate(SPEC, N, 9)
        entry = next(Path(tmp_path).glob("*.trace"))
        entry.write_bytes(entry.read_bytes()[:100])      # truncate
        healed = TraceCache(tmp_path)
        assert healed.get_or_generate(SPEC, N, 9) == original
        assert healed.counters()["generated"] == 1       # regenerated

    def test_warm_harness_never_regenerates(self, tmp_path):
        config = dataclasses.replace(FAST,
                                     trace_cache_dir=str(tmp_path))
        ExperimentHarness(config).trace("leela")         # populate
        entry = next(Path(tmp_path).glob("*.trace"))
        mtime = entry.stat().st_mtime_ns
        warm = ExperimentHarness(config)
        warm.trace("leela")
        warm.trace("leela")
        assert warm.trace_cache.counters()["generated"] == 0
        assert entry.stat().st_mtime_ns == mtime     # never rewritten

    def test_resolve_off_values(self, tmp_path, monkeypatch):
        from repro.traces import resolve_trace_cache
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert resolve_trace_cache(None) is None
        assert resolve_trace_cache("off") is None
        assert resolve_trace_cache(str(tmp_path)).root == tmp_path
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        assert resolve_trace_cache(None).root == tmp_path
        monkeypatch.setenv("REPRO_TRACE_CACHE", "none")
        assert resolve_trace_cache(None) is None


class TestWarmParallelCampaign:
    def test_jobs_workers_load_never_resynthesise(self, tmp_path):
        """A warm --jobs campaign synthesises each workload at most once
        (here: zero times — the cache was primed), pinned through the
        per-cell timing records and the entry mtimes."""
        from repro.analysis.campaign import run_campaign
        config = dataclasses.replace(
            FAST, trace_cache_dir=str(tmp_path / "tc"))
        primer = ExperimentHarness(config)
        for workload in config.workloads:
            primer.trace(workload)
        entries = {path: path.stat().st_mtime_ns
                   for path in (tmp_path / "tc").glob("*.trace")}
        assert len(entries) == len(config.workloads)
        campaign = run_campaign(
            ExperimentHarness(config), tmp_path / "c.jsonl",
            ["Banshee", "Bumblebee"], list(config.workloads), jobs=2)
        timing = campaign.timing_summary()
        assert timing["cells"] == 4
        assert timing["trace_generated"] == 0
        assert timing["trace_misses"] == 0
        assert timing["trace_hits"] >= len(config.workloads)
        for path, mtime in entries.items():
            assert path.stat().st_mtime_ns == mtime    # never rewritten


_SUBPROCESS_SNIPPET = """
import sys, hashlib
sys.path.insert(0, {src!r})
from repro.traces import SyntheticTraceGenerator, TraceCache, synthetic_spec
from repro.traces.spec import SystemScale
spec = synthetic_spec("mcf", SystemScale(1 / 256))
cache = TraceCache({root!r})
packed = cache.get_or_generate(spec, 2500, 42)
print(hashlib.sha256(packed.tobytes()).hexdigest())
"""


class TestCrossProcessDeterminism:
    def test_two_processes_agree_byte_for_byte(self, tmp_path):
        src = str(Path(__file__).resolve().parent.parent / "src")
        digests = []
        for index in range(2):
            root = str(tmp_path / f"cache{index}")   # no shared state
            out = subprocess.run(
                [sys.executable, "-c",
                 _SUBPROCESS_SNIPPET.format(src=src, root=root)],
                capture_output=True, text=True, check=True)
            digests.append(out.stdout.strip())
        assert digests[0] == digests[1]
        # ... and the in-process stream matches the subprocesses'.
        local = SyntheticTraceGenerator(SPEC, seed=42).generate_packed(2500)
        assert hashlib.sha256(local.tobytes()).hexdigest() == digests[0]

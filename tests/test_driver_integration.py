"""Integration tests for the simulation driver and cross-cutting flows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NoHBMController, make_controller
from repro.core import BumblebeeController
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import CpuModel, MemoryRequest, SimulationDriver
from repro.traces import SyntheticSpec, SyntheticTraceGenerator

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)


def trace_of(n, footprint_mb=16, seed=3, **kwargs):
    spec = SyntheticSpec("w", footprint_mb * MIB,
                         kwargs.pop("spatial", 0.6),
                         kwargs.pop("temporal", 0.6),
                         kwargs.pop("mpki", 16.0), **kwargs)
    return SyntheticTraceGenerator(spec, seed=seed).generate(n)


class TestDriver:
    def test_result_accounting(self):
        driver = SimulationDriver()
        trace = trace_of(2000)
        result = driver.run(NoHBMController(DRAM), trace, workload="w")
        assert result.requests == 2000
        assert result.instructions == sum(r.icount for r in trace)
        assert result.elapsed_ns > 0
        assert result.avg_latency_ns > 0

    def test_max_requests_cap(self):
        driver = SimulationDriver()
        result = driver.run(NoHBMController(DRAM), trace_of(2000),
                            workload="w", max_requests=500)
        assert result.requests == 500

    def test_warmup_excluded_from_measurement(self):
        driver = SimulationDriver()
        trace = trace_of(3000)
        warm = driver.run(NoHBMController(DRAM), trace, workload="w",
                          warmup=1000)
        assert warm.requests == 2000
        assert warm.instructions == sum(r.icount for r in trace[1000:])

    def test_warmup_resets_traffic(self):
        driver = SimulationDriver()
        trace = trace_of(3000)
        cold = driver.run(NoHBMController(DRAM), trace, workload="w")
        warm = driver.run(NoHBMController(DRAM), trace, workload="w",
                          warmup=1000)
        assert warm.dram_traffic_bytes < cold.dram_traffic_bytes

    def test_warmup_keeps_placement_state(self):
        driver = SimulationDriver()
        trace = trace_of(4000, footprint_mb=2, temporal=0.9,
                         hot_fraction=0.5)
        controller = BumblebeeController(HBM, DRAM)
        warm = driver.run(controller, trace, workload="w", warmup=2000)
        # A warmed controller serves the hot set from HBM immediately.
        assert warm.hbm_hit_rate > 0.6

    def test_metadata_latency_accumulates(self):
        driver = SimulationDriver()
        controller = make_controller("Meta-H", HBM, DRAM)
        result = driver.run(controller, trace_of(500), workload="w")
        assert result.total_metadata_ns > 0
        assert result.metadata_latency_fraction > 0

    def test_normalisation_identity(self):
        driver = SimulationDriver()
        trace = trace_of(1000)
        a = driver.run(NoHBMController(DRAM), trace, workload="w")
        b = driver.run(NoHBMController(DRAM), trace, workload="w")
        assert a.normalised_ipc(b) == pytest.approx(1.0)
        assert a.normalised_traffic(b, "dram") == pytest.approx(1.0)

    def test_normalised_traffic_rejects_unknown_device(self):
        driver = SimulationDriver()
        trace = trace_of(100)
        a = driver.run(NoHBMController(DRAM), trace, workload="w")
        with pytest.raises(ValueError):
            a.normalised_traffic(a, "sram")

    def test_page_fault_penalty_charged(self):
        driver = SimulationDriver()
        beyond = DRAM.geometry.capacity_bytes + (1 << 20)
        trace = [MemoryRequest(addr=beyond + i * 64, icount=100)
                 for i in range(100)]
        result = driver.run(NoHBMController(DRAM), trace, workload="w")
        assert result.controller_stats.get("page_faults") == 100
        assert result.avg_latency_ns > NoHBMController.PAGE_FAULT_NS


class TestCrossDesignInvariants:
    """Properties that must hold for every design on every trace."""

    DESIGNS = ("Banshee", "AlloyCache", "UnisonCache", "Chameleon",
               "Hybrid2", "Bumblebee")

    @pytest.mark.parametrize("design", DESIGNS)
    def test_latency_positive_and_bounded(self, design):
        controller = make_controller(design, HBM, DRAM,
                                     sram_bytes=16 * 1024)
        driver = SimulationDriver()
        result = driver.run(controller, trace_of(3000), workload="w")
        assert 0 < result.avg_latency_ns < 10_000

    @pytest.mark.parametrize("design", DESIGNS)
    def test_hit_rate_in_unit_interval(self, design):
        controller = make_controller(design, HBM, DRAM,
                                     sram_bytes=16 * 1024)
        result = SimulationDriver().run(controller, trace_of(3000),
                                        workload="w")
        assert 0.0 <= result.hbm_hit_rate <= 1.0

    @pytest.mark.parametrize("design", DESIGNS)
    def test_demand_reads_plus_writes_equals_requests(self, design):
        controller = make_controller(design, HBM, DRAM,
                                     sram_bytes=16 * 1024)
        result = SimulationDriver().run(controller, trace_of(2000),
                                        workload="w")
        stats = result.controller_stats
        assert stats.get("demand_reads", 0) + \
            stats.get("demand_writes", 0) == 2000

    @pytest.mark.parametrize("design", DESIGNS)
    def test_overfetch_never_exceeds_fetched(self, design):
        controller = make_controller(design, HBM, DRAM,
                                     sram_bytes=16 * 1024)
        SimulationDriver().run(controller,
                               trace_of(4000, spatial=0.3, temporal=0.3),
                               workload="w")
        assert controller.stats.get("overfetch_bytes") <= \
            controller.stats.get("fetched_bytes")


class TestPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.05, 0.95), st.floats(0.05, 0.95),
           st.integers(0, 1000))
    def test_bumblebee_invariants_hold_for_any_locality(self, spatial,
                                                        temporal, seed):
        spec = SyntheticSpec("p", 8 * MIB, spatial, temporal, mpki=16.0)
        trace = SyntheticTraceGenerator(spec, seed=seed).generate(1200)
        controller = BumblebeeController(HBM, DRAM)
        SimulationDriver().run(controller, trace, workload="p")
        controller.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 8))
    def test_cpu_cores_do_not_change_request_count(self, cores):
        driver = SimulationDriver(CpuModel(cores=cores))
        result = driver.run(NoHBMController(DRAM), trace_of(500),
                            workload="w")
        assert result.requests == 500

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


WINDOW = ("--requests", "3000", "--warmup", "1000")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "MagicCache"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])


class TestCommands:
    def test_run(self, capsys):
        code, out = run_cli(capsys, "run", "--design", "Bumblebee",
                            "--workload", "leela", *WINDOW)
        assert code == 0
        assert "normalised IPC" in out
        assert "HBM hit rate" in out

    def test_run_baseline_design(self, capsys):
        code, out = run_cli(capsys, "run", "--design", "AlloyCache",
                            "--workload", "leela", *WINDOW)
        assert code == 0

    def test_compare(self, capsys):
        code, out = run_cli(capsys, "compare", "--designs", "Bumblebee",
                            "--workloads", "leela", "mcf", *WINDOW)
        assert code == 0
        assert "leela" in out and "mcf" in out

    def test_metadata(self, capsys):
        code, out = run_cli(capsys, "metadata", *WINDOW)
        assert code == 0
        assert "334KB" in out

    def test_characterise(self, capsys):
        code, out = run_cli(capsys, "characterise", "--workload", "leela",
                            "--requests", "2000", "--warmup", "500")
        assert code == 0
        assert "[leela]" in out

    def test_figure_unknown_id(self, capsys):
        code = main(["figure", "--id", "99", *WINDOW])
        assert code == 2

    def test_figure_7_small(self, capsys):
        # Tiny window: exercises the full variant sweep path.
        code, out = run_cli(capsys, "figure", "--id", "7",
                            "--requests", "600", "--warmup", "200")
        assert code == 0
        assert "Bumblebee" in out

    def test_mix(self, capsys):
        code, out = run_cli(capsys, "mix", "--preset", "mix-fig1",
                            "--design", "Bumblebee", *WINDOW)
        assert code == 0
        assert "mix-fig1" in out

    def test_sanitize_small(self, capsys, tmp_path):
        code, out = run_cli(capsys, "sanitize", "--designs", "Banshee",
                            "--seeds", "1", "--requests", "800",
                            "--warmup", "100",
                            "--out-dir", str(tmp_path))
        assert code == 0
        assert "all checks passed" in out
        assert not any(tmp_path.iterdir())

    def test_sanitize_rejects_unknown_design(self, capsys):
        code = main(["sanitize", "--designs", "MagicCache",
                     "--seeds", "1"])
        assert code == 2

    def test_sanitize_rejects_bad_vector_epoch(self, capsys):
        for bad in ("0", "-64"):
            code = main(["sanitize", "--designs", "Banshee",
                         "--seeds", "1", "--vector-epoch", bad])
            assert code == 2
            assert "--vector-epoch" in capsys.readouterr().err

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


WINDOW = ("--requests", "3000", "--warmup", "1000")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "MagicCache"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])


class TestCommands:
    def test_run(self, capsys):
        code, out = run_cli(capsys, "run", "--design", "Bumblebee",
                            "--workload", "leela", *WINDOW)
        assert code == 0
        assert "normalised IPC" in out
        assert "HBM hit rate" in out

    def test_run_baseline_design(self, capsys):
        code, out = run_cli(capsys, "run", "--design", "AlloyCache",
                            "--workload", "leela", *WINDOW)
        assert code == 0

    def test_compare(self, capsys):
        code, out = run_cli(capsys, "compare", "--designs", "Bumblebee",
                            "--workloads", "leela", "mcf", *WINDOW)
        assert code == 0
        assert "leela" in out and "mcf" in out

    def test_metadata(self, capsys):
        code, out = run_cli(capsys, "metadata", *WINDOW)
        assert code == 0
        assert "334KB" in out

    def test_characterise(self, capsys):
        code, out = run_cli(capsys, "characterise", "--workload", "leela",
                            "--requests", "2000", "--warmup", "500")
        assert code == 0
        assert "[leela]" in out

    def test_figure_unknown_id(self, capsys):
        code = main(["figure", "--id", "99", *WINDOW])
        assert code == 2

    def test_figure_7_small(self, capsys):
        # Tiny window: exercises the full variant sweep path.
        code, out = run_cli(capsys, "figure", "--id", "7",
                            "--requests", "600", "--warmup", "200")
        assert code == 0
        assert "Bumblebee" in out

    def test_mix(self, capsys):
        code, out = run_cli(capsys, "mix", "--preset", "mix-fig1",
                            "--design", "Bumblebee", *WINDOW)
        assert code == 0
        assert "mix-fig1" in out

    def test_sanitize_small(self, capsys, tmp_path):
        code, out = run_cli(capsys, "sanitize", "--designs", "Banshee",
                            "--seeds", "1", "--requests", "800",
                            "--warmup", "100",
                            "--out-dir", str(tmp_path))
        assert code == 0
        assert "all checks passed" in out
        assert not any(tmp_path.iterdir())

    def test_sanitize_rejects_unknown_design(self, capsys):
        code = main(["sanitize", "--designs", "MagicCache",
                     "--seeds", "1"])
        assert code == 2

    def test_sanitize_rejects_bad_vector_epoch(self, capsys):
        for bad in ("0", "-64"):
            code = main(["sanitize", "--designs", "Banshee",
                         "--seeds", "1", "--vector-epoch", bad])
            assert code == 2
            assert "--vector-epoch" in capsys.readouterr().err


class TestExecutionPlane:
    """campaign/sweep/explore share one flag surface and one backend
    path; the fabric client renders the same summary as a local run."""

    CAMPAIGN = ("--workloads", "leela", "--requests", "600",
                "--warmup", "150", "--no-timing")

    def test_shared_flags_parse_on_every_plane_command(self):
        parser = build_parser()
        for argv in (["campaign"],
                     ["sweep", "--grid", "chbm_ratio=0,0.5"],
                     ["explore", "--grid", "chbm_ratio=0,0.5"]):
            args = parser.parse_args(
                argv + ["--fabric", "http://127.0.0.1:9", "--jobs", "2",
                        "--supervise", "--no-timing", "--resume"])
            assert args.fabric == "http://127.0.0.1:9"
            assert args.jobs == 2 and args.no_timing and args.resume

    def test_resume_without_file_exits_2(self, capsys, tmp_path):
        code = main(["campaign", "--out", str(tmp_path / "nope.jsonl"),
                     "--resume", *self.CAMPAIGN])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_fabric_campaign_summary_matches_local(self, capsys,
                                                   tmp_path):
        # The --fabric client must render through the same post-run
        # path as a local run: the standard campaign line and matrix,
        # not a bespoke fabric-only summary.
        from repro import ExperimentConfig, ExperimentHarness
        from repro.analysis import Campaign
        from repro.fabric import FabricCoordinator, FabricPolicy
        from repro.fabric.coordinator import CoordinatorThread
        config = ExperimentConfig(requests=600, warmup=150,
                                  workloads=("leela",))
        served = Campaign(ExperimentHarness(config),
                          tmp_path / "served.jsonl",
                          record_timing=False)
        coordinator = FabricCoordinator(
            served, ["Bumblebee", "AlloyCache"], ["leela"],
            policy=FabricPolicy())
        thread = CoordinatorThread(coordinator, once=True, linger_s=2.0)
        url = thread.start()
        try:
            code, fabric_out = run_cli(
                capsys, "campaign", "--fabric", url,
                "--out", str(tmp_path / "mirror.jsonl"),
                *self.CAMPAIGN)
        finally:
            thread.wait(timeout_s=30.0)
            thread.stop()
        assert code == 0
        local_code, local_out = run_cli(
            capsys, "campaign", "--designs", "Bumblebee", "AlloyCache",
            "--out", str(tmp_path / "local.jsonl"), *self.CAMPAIGN)
        assert local_code == 0
        assert "fabric: fleet at" in fabric_out
        assert "campaign: 2 cells complete (2 new)" in fabric_out
        assert "campaign: 2 cells complete (2 new)" in local_out
        # Identical matrix render, byte-identical campaign files.
        assert fabric_out[fabric_out.index("\n\n"):] == \
            local_out[local_out.index("\n\n"):]
        assert (tmp_path / "mirror.jsonl").read_bytes() == \
            (tmp_path / "local.jsonl").read_bytes()

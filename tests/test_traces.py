"""Tests for the trace layer: records, persistence, synthetic generation."""

import pytest

from repro.sim.request import CACHE_LINE_BYTES, MemoryRequest
from repro.traces import (
    DEFAULT_SCALE,
    MPKI_GROUPS,
    PAPER_SCALE,
    SPEC2017,
    SyntheticSpec,
    SyntheticTraceGenerator,
    SystemScale,
    interleave,
    load_trace,
    phase_shift_trace,
    save_trace,
    summarise,
    synthetic_spec,
    take,
    workload_trace,
)


class TestTraceIO:
    def test_save_load_roundtrip(self, tmp_path):
        trace = [MemoryRequest(addr=i * 64, is_write=i % 2 == 0, icount=50)
                 for i in range(20)]
        path = tmp_path / "trace.txt"
        assert save_trace(trace, path) == 20
        loaded = list(load_trace(path))
        assert loaded == trace

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("deadbeef 1\n")
        with pytest.raises(ValueError):
            list(load_trace(path))

    def test_take(self):
        spec = SyntheticSpec("t", 1 << 20, 0.5, 0.5, 10.0)
        generator = SyntheticTraceGenerator(spec)
        assert len(take(iter(generator), 100)) == 100


class TestSummarise:
    def test_mpki_matches_spec(self):
        trace = workload_trace("mcf", 5000)
        summary = summarise(trace)
        assert summary.mpki == pytest.approx(SPEC2017["mcf"].mpki, rel=0.05)

    def test_write_fraction_close_to_spec(self):
        trace = workload_trace("lbm", 20000)
        summary = summarise(trace)
        assert summary.write_fraction == pytest.approx(
            SPEC2017["lbm"].write_fraction, abs=0.03)

    def test_footprint_bounded_by_spec(self):
        spec = synthetic_spec("mcf")
        trace = workload_trace("mcf", 20000)
        summary = summarise(trace)
        assert summary.max_addr < spec.footprint_bytes


class TestInterleave:
    def test_preserves_all_requests(self):
        a = [MemoryRequest(addr=i * 64) for i in range(10)]
        b = [MemoryRequest(addr=(1000 + i) * 64) for i in range(25)]
        mixed = list(interleave([a, b], chunk=4))
        assert len(mixed) == 35
        assert {r.addr for r in mixed} == {r.addr for r in a + b}


class TestSyntheticSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec("x", 1 << 20, spatial=1.5, temporal=0.5, mpki=1.0)
        with pytest.raises(ValueError):
            SyntheticSpec("x", 1 << 20, 0.5, 0.5, mpki=0.0)
        with pytest.raises(ValueError):
            SyntheticSpec("x", 1 << 20, 0.5, 0.5, 1.0, hot_fraction=0.0)

    def test_icount_from_mpki(self):
        spec = SyntheticSpec("x", 1 << 20, 0.5, 0.5, mpki=20.0)
        assert spec.icount_per_miss == 50

    def test_scaled_preserves_knobs(self):
        spec = SyntheticSpec("x", 1 << 30, 0.7, 0.3, 5.0)
        scaled = spec.scaled(0.25)
        assert scaled.spatial == spec.spatial
        assert scaled.footprint_bytes == spec.footprint_bytes // 4


class TestGenerator:
    def test_deterministic_with_seed(self):
        spec = synthetic_spec("mcf")
        a = SyntheticTraceGenerator(spec, seed=42).generate(500)
        b = SyntheticTraceGenerator(spec, seed=42).generate(500)
        assert a == b

    def test_different_seeds_differ(self):
        spec = synthetic_spec("mcf")
        a = SyntheticTraceGenerator(spec, seed=1).generate(500)
        b = SyntheticTraceGenerator(spec, seed=2).generate(500)
        assert a != b

    def test_addresses_within_footprint(self):
        spec = SyntheticSpec("x", 1 << 20, 0.5, 0.5, 10.0, base_addr=1 << 24)
        for request in SyntheticTraceGenerator(spec).generate(2000):
            assert (1 << 24) <= request.addr < (1 << 24) + (1 << 20)

    def test_strong_temporal_concentrates_accesses(self):
        hot = SyntheticSpec("hot", 16 << 20, 0.1, 0.95, 10.0,
                            hot_fraction=0.005)
        cold = SyntheticSpec("cold", 16 << 20, 0.1, 0.05, 10.0,
                             hot_fraction=0.005)
        hot_lines = {r.line for r in SyntheticTraceGenerator(hot).generate(
            5000)}
        cold_lines = {r.line for r in SyntheticTraceGenerator(cold).generate(
            5000)}
        # Strong temporal locality touches markedly fewer distinct lines
        # (hot-set re-references replace uniform scatter).
        assert len(hot_lines) < len(cold_lines) * 0.7

    def test_strong_spatial_runs_sequentially(self):
        """With spatial ~1 most accesses continue one of the generator's
        interleaved sequential streams (the successor of a recent
        address)."""
        spec = SyntheticSpec("seq", 64 << 20, 0.95, 0.0, 10.0)
        trace = SyntheticTraceGenerator(spec).generate(5000)
        recent: list[int] = []
        sequential = 0
        for request in trace:
            if request.addr - CACHE_LINE_BYTES in recent:
                sequential += 1
            recent.append(request.addr)
            if len(recent) > 16:
                recent.pop(0)
        assert sequential > len(trace) * 0.6

    def test_phase_shift_concatenates(self):
        a = SyntheticSpec("a", 1 << 20, 0.9, 0.9, 10.0)
        b = SyntheticSpec("b", 1 << 20, 0.1, 0.1, 10.0)
        trace = list(phase_shift_trace(a, b, n_per_phase=100, phases=4))
        assert len(trace) == 400

    def test_phase_seeds_do_not_collide(self):
        # Regression: per-phase seeding used ``seed + phase``, so
        # (seed=4, phase=1) replayed (seed=5, phase=0)'s stream exactly.
        spec = SyntheticSpec("a", 1 << 20, 0.9, 0.9, 10.0)
        later_phase = list(phase_shift_trace(
            spec, spec, n_per_phase=200, phases=2, seed=4))[200:]
        first_phase = list(phase_shift_trace(
            spec, spec, n_per_phase=200, phases=1, seed=5))
        assert later_phase != first_phase

    def test_phase_shift_deterministic(self):
        a = SyntheticSpec("a", 1 << 20, 0.9, 0.9, 10.0)
        b = SyntheticSpec("b", 1 << 20, 0.1, 0.1, 10.0)
        first = list(phase_shift_trace(a, b, n_per_phase=50, phases=3))
        again = list(phase_shift_trace(a, b, n_per_phase=50, phases=3))
        assert first == again

    def test_derive_seed_mixes_all_parts(self):
        from repro.traces import derive_seed
        assert derive_seed("x", 4, 1) != derive_seed("x", 5, 0)
        assert derive_seed("x", 4, 1) == derive_seed("x", 4, 1)
        assert derive_seed("a", 1) != derive_seed("b", 1)


class TestSpecCatalogue:
    def test_fourteen_benchmarks(self):
        assert len(SPEC2017) == 14

    def test_groups_partition_catalogue(self):
        names = [n for group in MPKI_GROUPS.values() for n in group]
        assert sorted(names) == sorted(SPEC2017)

    def test_table2_values(self):
        assert SPEC2017["roms"].mpki == 31.9
        assert SPEC2017["roms"].footprint_gb == 10.6
        assert SPEC2017["leela"].mpki == 0.1
        assert SPEC2017["mcf"].footprint_gb == 0.2

    def test_fig1_locality_classes(self):
        # The paper's three exemplars (Figure 1).
        mcf, wrf, xz = SPEC2017["mcf"], SPEC2017["wrf"], SPEC2017["xz"]
        assert mcf.spatial > 0.7 and mcf.temporal > 0.7
        assert wrf.spatial < 0.3 and wrf.temporal > 0.7
        assert xz.spatial > 0.7 and xz.temporal < 0.3

    def test_scale_ratios_preserved(self):
        paper = PAPER_SCALE
        small = DEFAULT_SCALE
        assert paper.dram_bytes / paper.hbm_bytes == pytest.approx(
            small.dram_bytes / small.hbm_bytes)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            SystemScale(0.0)
        with pytest.raises(ValueError):
            SystemScale(2.0)

    def test_roms_exceeds_dram_at_every_scale(self):
        # Table II: roms (10.6GB) overflows the 10GB module — the trigger
        # for the high-memory-footprint machinery must survive scaling.
        for scale in (PAPER_SCALE, DEFAULT_SCALE):
            assert (scale.footprint_bytes(SPEC2017["roms"])
                    > scale.dram_bytes)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            synthetic_spec("doom3")

"""Tests for campaign persistence and repository-quality gates."""

import inspect
import json

import pytest

import repro
from repro import ExperimentConfig, ExperimentHarness
from repro.analysis import Campaign, run_campaign

FAST = ExperimentConfig(requests=2500, warmup=500,
                        workloads=("leela", "mcf"))


def read_records(path):
    """Records from a campaign file (JSON Lines, one per line)."""
    return [json.loads(line)
            for line in path.read_text().splitlines() if line.strip()]


@pytest.fixture()
def harness():
    return ExperimentHarness(FAST)


class TestCampaign:
    def test_fills_matrix_and_persists(self, harness, tmp_path):
        path = tmp_path / "c.json"
        campaign = run_campaign(harness, path, ["Bumblebee"],
                                ["leela", "mcf"])
        assert campaign.completed_cells == 2
        records = read_records(path)
        assert {r["workload"] for r in records} == {"leela", "mcf"}
        assert all("norm_ipc" in r for r in records)

    def test_resume_skips_existing_cells(self, harness, tmp_path):
        path = tmp_path / "c.json"
        Campaign(harness, path).run(["Bumblebee"], ["leela"])
        resumed = Campaign(harness, path)
        new_runs = resumed.run(["Bumblebee", "AlloyCache"], ["leela"])
        assert new_runs == 1
        assert resumed.completed_cells == 2

    def test_records_carry_config(self, harness, tmp_path):
        path = tmp_path / "c.json"
        run_campaign(harness, path, ["Bumblebee"], ["leela"])
        record = read_records(path)[0]
        assert record["config"]["requests"] == FAST.requests
        assert record["config"]["seed"] == FAST.seed

    def test_matrix_and_render(self, harness, tmp_path):
        campaign = run_campaign(harness, tmp_path / "c.json",
                                ["Bumblebee", "AlloyCache"], ["leela"])
        matrix = campaign.matrix()
        assert set(matrix) == {"Bumblebee", "AlloyCache"}
        text = campaign.render()
        assert "Bumblebee" in text and "leela" in text

    def test_empty_campaign_renders(self, harness, tmp_path):
        campaign = Campaign(harness, tmp_path / "c.json")
        assert "empty" in campaign.render()


def public_symbols(module):
    for name in getattr(module, "__all__", []):
        yield name, getattr(module, name)


class TestRepositoryQuality:
    """Docstring coverage gates on the public API."""

    MODULES = [repro, repro.mem, repro.sim, repro.cache, repro.traces,
               repro.core, repro.baselines, repro.analysis]

    @pytest.mark.parametrize("module", MODULES,
                             ids=lambda m: m.__name__)
    def test_every_public_symbol_documented(self, module):
        undocumented = []
        for name, symbol in public_symbols(module):
            if inspect.isclass(symbol) or inspect.isfunction(symbol):
                if not inspect.getdoc(symbol):
                    undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: missing docstrings on {undocumented}")

    @pytest.mark.parametrize("module", MODULES,
                             ids=lambda m: m.__name__)
    def test_module_docstrings_present(self, module):
        assert inspect.getdoc(module)

    def test_public_classes_document_their_methods(self):
        from repro.baselines.base import HybridMemoryController
        from repro.core import BumblebeeController
        for cls in (HybridMemoryController, BumblebeeController):
            for name, member in inspect.getmembers(
                    cls, predicate=inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), (cls.__name__, name)

    def test_version_exported(self):
        assert repro.__version__ == "1.5.0"

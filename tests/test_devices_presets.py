"""Tests for the device-report analysis and the extended device presets."""

import pytest

from repro.analysis import (
    controller_device_reports,
    device_report,
    format_device_reports,
)
from repro.baselines import make_controller
from repro.mem import (
    MemoryDevice,
    ddr4_3200_config,
    ddr5_4800_config,
    hbm2_config,
    hbm3_config,
)
from repro.sim import SimulationDriver
from repro.traces import workload_trace

MIB = 1 << 20


class TestPresets:
    def test_hbm3_doubles_down_on_bandwidth(self):
        assert hbm3_config().peak_bandwidth_gbs > \
            2 * hbm2_config().peak_bandwidth_gbs

    def test_ddr5_faster_than_ddr4(self):
        assert ddr5_4800_config().peak_bandwidth_gbs > \
            ddr4_3200_config().peak_bandwidth_gbs

    def test_stacked_flags(self):
        assert hbm3_config().is_stacked
        assert not ddr5_4800_config().is_stacked

    def test_ddr5_rank_ganging(self):
        assert ddr5_4800_config().geometry.devices_per_rank == 4

    @pytest.mark.parametrize("factory", [hbm3_config, ddr5_4800_config])
    def test_presets_build_working_devices(self, factory):
        device = MemoryDevice(factory(32 * MIB))
        access = device.access(0, 64, False, 0.0)
        assert access.latency_ns > 0
        device.bulk_transfer(0, 64 * 1024, False, 0.0)
        assert device.traffic().total_bytes > 64 * 1024

    def test_bumblebee_runs_on_hbm3_ddr5(self):
        controller = make_controller("Bumblebee", hbm3_config(8 * MIB),
                                     ddr5_4800_config(80 * MIB))
        result = SimulationDriver().run(
            controller, workload_trace("mcf", 3000), workload="mcf")
        assert result.requests == 3000
        controller.check_invariants()


class TestDeviceReports:
    def run(self, design="Bumblebee"):
        controller = make_controller(design, hbm2_config(8 * MIB),
                                     ddr4_3200_config(80 * MIB))
        result = SimulationDriver().run(
            controller, workload_trace("lbm", 5000), workload="lbm")
        return controller, result

    def test_reports_cover_both_devices(self):
        controller, result = self.run()
        reports = controller_device_reports(controller, result)
        assert set(reports) == {"hbm", "dram"}
        assert reports["hbm"].name == "HBM2"

    def test_no_hbm_design_reports_dram_only(self):
        controller = make_controller("No-HBM", hbm2_config(8 * MIB),
                                     ddr4_3200_config(80 * MIB))
        result = SimulationDriver().run(
            controller, workload_trace("lbm", 2000), workload="lbm")
        reports = controller_device_reports(controller, result)
        assert set(reports) == {"dram"}

    def test_rates_in_unit_interval(self):
        controller, result = self.run()
        for report in controller_device_reports(controller,
                                                result).values():
            assert 0.0 <= report.row_hit_rate <= 1.0
            assert 0.0 <= report.utilisation <= 1.0

    def test_traffic_matches_device_counters(self):
        controller, result = self.run()
        reports = controller_device_reports(controller, result)
        assert reports["hbm"].read_bytes + reports["hbm"].write_bytes == \
            controller.hbm.traffic().total_bytes

    def test_rejects_zero_elapsed(self):
        controller, _ = self.run()
        with pytest.raises(ValueError):
            device_report(controller.dram, 0.0)

    def test_formatting(self):
        controller, result = self.run()
        text = format_device_reports(
            {"Bumblebee": controller_device_reports(controller, result)})
        assert "HBM2" in text and "DDR4-3200" in text

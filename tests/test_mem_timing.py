"""Tests for device timing presets and parameter plumbing."""

import pytest

from repro.mem import (
    GIB,
    DeviceConfig,
    DeviceCurrents,
    DeviceGeometry,
    DeviceTimings,
    ddr4_3200_config,
    hbm2_config,
)


class TestTimings:
    def test_ns_conversion(self):
        t = DeviceTimings(tck_ns=0.5, tcas=10, trcd=10, trp=10, tras=24,
                          trc=34, trfc=100, trefi=3900)
        assert t.ns(10) == pytest.approx(5.0)

    def test_row_hit_is_cas_only(self):
        t = hbm2_config().timings
        assert t.row_hit_ns == pytest.approx(t.tcas * t.tck_ns)

    def test_row_closed_adds_rcd(self):
        t = hbm2_config().timings
        assert t.row_closed_ns == pytest.approx((t.trcd + t.tcas) * t.tck_ns)

    def test_row_conflict_is_worst(self):
        t = ddr4_3200_config().timings
        assert t.row_conflict_ns > t.row_closed_ns > t.row_hit_ns


class TestPresets:
    def test_hbm2_matches_table1(self):
        config = hbm2_config()
        assert config.geometry.channels == 8
        assert config.geometry.bus_bits == 128
        assert config.geometry.interleave_bytes == 512
        assert config.geometry.banks_per_channel == 8
        assert config.timings.tcas == 7
        assert config.timings.trcd == 7
        assert config.timings.trp == 7
        assert config.currents.idd4r == 390
        assert config.currents.idd4w == 500
        assert config.is_stacked

    def test_ddr4_matches_table1(self):
        config = ddr4_3200_config()
        assert config.geometry.channels == 2
        assert config.geometry.bus_bits == 64
        assert config.timings.tcas == 22
        assert config.currents.idd4r == 143
        assert not config.is_stacked

    def test_default_capacities(self):
        assert hbm2_config().geometry.capacity_bytes == 1 * GIB
        assert ddr4_3200_config().geometry.capacity_bytes == 10 * GIB

    def test_custom_capacity(self):
        assert hbm2_config(64 << 20).geometry.capacity_bytes == 64 << 20

    def test_hbm_bandwidth_exceeds_ddr4(self):
        # 256 GB/s vs 51.2 GB/s at Table I configurations.
        assert (hbm2_config().peak_bandwidth_gbs
                > 4 * ddr4_3200_config().peak_bandwidth_gbs)

    def test_hbm_peak_bandwidth_value(self):
        assert hbm2_config().peak_bandwidth_gbs == pytest.approx(256.0)

    def test_hbm_unloaded_latency_below_ddr4(self):
        assert (hbm2_config().timings.row_conflict_ns
                < ddr4_3200_config().timings.row_conflict_ns)


class TestBurst:
    def test_burst_ns_scales_with_bytes(self):
        config = hbm2_config()
        assert config.burst_ns(128) == pytest.approx(2 * config.burst_ns(64))

    def test_burst_minimum_one_beat(self):
        config = hbm2_config()
        assert config.burst_ns(1) == pytest.approx(0.5 * config.timings.tck_ns)

    def test_ddr4_64b_burst(self):
        config = ddr4_3200_config()
        # 64B over an 8B bus: 8 beats = 4 clocks at DDR.
        assert config.burst_ns(64) == pytest.approx(4 * 0.625)

"""The vectorized batch replay engine (``repro.sim.vectorized``).

The contract mirrors ``tests/test_packed_traces.py``'s: the vectorized
kernel is an *engine*, not a model — every :class:`SimResult` it
produces must be bit-identical to the scalar reference loop, across
warm-up boundaries, request caps, epoch sizes, and page-fault-heavy
footprints.  Designs without a batch plan must fall back to the scalar
loop transparently, the registry's declared ``batch_replayable`` flag
must agree with what the built controllers actually implement, and the
harness must record which engine ran in its per-cell timing.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExperimentConfig, ExperimentHarness
from repro.baselines import make_controller
from repro.core import BumblebeeConfig, BumblebeeController
from repro.designs import registry
from repro.sim import (SimulationDriver, batch_capable, epoch_capable,
                       fallback_reason)
from repro.traces import SyntheticTraceGenerator, synthetic_spec
from repro.traces.packed import PackedTrace, encode_request

CONFIG = ExperimentConfig(requests=1200, warmup=400, workloads=("mcf",))
BATCH_DESIGNS = ("No-HBM", "Ideal")
#: Every spec on the two-pass epoch tier — the feedback designs that
#: newly vectorize.  Derived from the registry so a design added later
#: joins the bit-identity matrix automatically.
EPOCH_DESIGNS = tuple(name for name in registry.names()
                      if registry.batch_tier(name) == "epoch")
N = 1700


def _trace(harness, n=N, seed=None):
    spec = synthetic_spec("mcf", harness.config.scale)
    return SyntheticTraceGenerator(
        spec, seed=seed if seed is not None else harness.config.seed
    ).generate_packed(n)


def _run(harness, design, trace, engine, warmup=0, max_requests=None,
         vector_epoch=None):
    driver = SimulationDriver(harness.config.cpu,
                              vector_epoch=vector_epoch)
    result = driver.run(
        make_controller(design, harness.hbm_config, harness.dram_config,
                        sram_bytes=harness.config.scale.sram_bytes),
        trace, workload="mcf", max_requests=max_requests, warmup=warmup,
        engine=engine)
    return result, driver


class TestBitIdentity:
    def test_batch_designs_identical_to_scalar(self):
        """Vector == scalar over warm-up x cap combinations.

        ``warmup=400, max_requests=200`` pins the cap-inside-warm-up
        edge, where the scalar loop never reaches the measurement
        reset and the whole run is one segment.
        """
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        for design in BATCH_DESIGNS:
            for warmup in (0, 400):
                for cap in (None, 200, 700):
                    scalar, _ = _run(harness, design, trace, "scalar",
                                     warmup=warmup, max_requests=cap)
                    vector, driver = _run(harness, design, trace,
                                          "vector", warmup=warmup,
                                          max_requests=cap)
                    label = (design, warmup, cap)
                    assert driver.last_engine == "vector", label
                    assert vector == scalar, label

    def test_cross_epoch_state_carry(self):
        """Tiny epochs force bank/bus/open-row state across epoch
        boundaries; the result must not change."""
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        for design in BATCH_DESIGNS:
            scalar, _ = _run(harness, design, trace, "scalar",
                             warmup=400)
            vector, driver = _run(harness, design, trace, "vector",
                                  warmup=400, vector_epoch=64)
            assert vector == scalar, design
            # Epochs count per segment: warm-up and measured windows
            # each round up to whole epochs.
            assert driver.last_vector_epochs \
                == -(-400 // 64) + -(-(N - 400) // 64)

    def test_fault_heavy_footprint_identical(self):
        """Addresses past the OS-visible window fault on No-HBM; the
        vectorized fault penalty and accounting must match exactly."""
        harness = ExperimentHarness(CONFIG)
        probe = make_controller("No-HBM", harness.hbm_config,
                                harness.dram_config)
        lines = 2 * probe.os_visible_bytes() // 64
        stride = lines // 400 + 1       # span the whole 2x window
        trace = PackedTrace(array("Q", [
            encode_request((i * stride % lines) * 64, i % 3 == 0,
                           i % 50)
            for i in range(900)]))
        scalar, _ = _run(harness, "No-HBM", trace, "scalar", warmup=100)
        vector, driver = _run(harness, "No-HBM", trace, "vector",
                              warmup=100, vector_epoch=128)
        assert driver.last_engine == "vector"
        assert scalar.controller_stats.get("page_faults", 0) > 0
        assert vector == scalar

    def test_vector_epoch_size_is_invisible(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        results = [
            _run(harness, "Ideal", trace, "vector", warmup=400,
                 vector_epoch=epoch)[0]
            for epoch in (None, 1, 63, 512, 10 ** 6)]
        assert all(result == results[0] for result in results[1:])


class TestEpochBitIdentity:
    """The two-pass engine on every feedback design that declares it."""

    def test_epoch_designs_identical_to_scalar(self):
        """Vector == scalar for all 15 epoch-tier designs across the
        warm-up x cap matrix (including the cap-inside-warm-up edge)."""
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        assert len(EPOCH_DESIGNS) >= 15
        for design in EPOCH_DESIGNS:
            for warmup, cap in ((0, None), (400, None), (400, 200),
                                (0, 700)):
                scalar, _ = _run(harness, design, trace, "scalar",
                                 warmup=warmup, max_requests=cap)
                vector, driver = _run(harness, design, trace, "vector",
                                      warmup=warmup, max_requests=cap)
                label = (design, warmup, cap)
                assert driver.last_engine == "vector", label
                assert driver.last_fallback_reason is None, label
                assert vector == scalar, label

    def test_small_epochs_identical(self):
        """Tiny epochs maximise commit_epoch invocations and cross-epoch
        feedback carry; the result must not change."""
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        for design in EPOCH_DESIGNS:
            scalar, _ = _run(harness, design, trace, "scalar",
                             warmup=400)
            for epoch in (64, 512):
                vector, driver = _run(harness, design, trace, "vector",
                                      warmup=400, vector_epoch=epoch)
                assert driver.last_engine == "vector", (design, epoch)
                assert vector == scalar, (design, epoch)

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_two_pass_commit_matches_scalar_feedback_order(self, data):
        """Property pin: whatever the request mix, the two-pass engine's
        deferred ``commit_epoch`` replays Bumblebee's feedback (BLE used
        and dirty bits, hotness counter order) exactly as the scalar
        loop applied it inline — every SimResult field equal."""
        harness = ExperimentHarness(CONFIG)
        lines = (32 << 20) // 64
        n = data.draw(st.integers(min_value=64, max_value=300))
        stream = data.draw(st.lists(
            st.tuples(st.integers(0, lines - 1), st.booleans(),
                      st.integers(0, 200)),
            min_size=n, max_size=n))
        trace = PackedTrace(array("Q", [
            encode_request(line * 64, wr, icount)
            for line, wr, icount in stream]))
        warmup = data.draw(st.sampled_from([0, 50]))
        epoch = data.draw(st.sampled_from([None, 32, 256]))
        scalar, _ = _run(harness, "Bumblebee", trace, "scalar",
                         warmup=warmup)
        vector, driver = _run(harness, "Bumblebee", trace, "vector",
                              warmup=warmup, vector_epoch=epoch)
        assert driver.last_engine == "vector"
        assert vector == scalar


class TestFallback:
    def test_unsupported_design_falls_back_to_scalar(self):
        """MemPod is the one remaining ``batch_replayable="none"``
        design — its interval migration is not epoch-replayable."""
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness, n=600)
        scalar, _ = _run(harness, "MemPod", trace, "scalar",
                         warmup=200)
        vector, driver = _run(harness, "MemPod", trace, "vector",
                              warmup=200)
        assert driver.last_engine == "scalar"
        assert driver.last_vector_epochs == 0
        assert driver.last_scalar_epochs > 0
        assert driver.last_fallback_reason == "design-not-batch-capable"
        assert vector == scalar

    def test_object_stream_stays_scalar(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness, n=600)
        result, driver = _run(harness, "Ideal", iter(trace), "vector",
                              warmup=200)
        assert driver.last_engine == "scalar"
        packed, _ = _run(harness, "Ideal", trace, "scalar", warmup=200)
        assert result == packed

    def test_auto_selects_vector_when_capable(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness, n=600)
        _, on_batch = _run(harness, "Ideal", trace, "auto")
        assert on_batch.last_engine == "vector"
        _, on_epoch = _run(harness, "Bumblebee", trace, "auto")
        assert on_epoch.last_engine == "vector"
        _, on_scalar = _run(harness, "MemPod", trace, "auto")
        assert on_scalar.last_engine == "scalar"

    def test_unknown_engine_rejected(self):
        harness = ExperimentHarness(CONFIG)
        with pytest.raises(ValueError, match="engine"):
            _run(harness, "Ideal", _trace(harness, n=8), "bogus")

    def test_epoch_granularity_veto_forces_scalar(self):
        """A Bumblebee configuration with more than 64 blocks per page
        cannot pack its block-valid bitmaps into uint64 lanes; the
        controller stays epoch-capable but vetoes the engine, and the
        driver records the veto reason."""
        harness = ExperimentHarness(CONFIG)
        config = BumblebeeConfig(page_bytes=8192,    # 128 blocks/page
                                 block_bytes=64)
        assert config.blocks_per_page > 64

        def wide(name):
            return BumblebeeController(harness.hbm_config,
                                       harness.dram_config, config,
                                       name=name)

        assert epoch_capable(wide("probe"))
        assert fallback_reason(wide("probe")) \
            == "feedback-not-epoch-granular"
        trace = _trace(harness, n=600)
        driver = SimulationDriver(harness.config.cpu)
        vector = driver.run(wide("wide"), trace, workload="mcf",
                            warmup=200, engine="vector")
        assert driver.last_engine == "scalar"
        assert driver.last_fallback_reason \
            == "feedback-not-epoch-granular"
        scalar = SimulationDriver(harness.config.cpu).run(
            wide("wide"), trace, workload="mcf", warmup=200,
            engine="scalar")
        assert vector == scalar

    def test_vector_epoch_validation(self):
        """Regression: bad epoch sizes fail fast at construction, not
        deep inside a campaign."""
        for bad in (0, -1, -512, 2.5, True, "64"):
            with pytest.raises(ValueError, match="vector_epoch"):
                SimulationDriver(vector_epoch=bad)
        assert SimulationDriver(vector_epoch=64).vector_epoch == 64


class TestRegistryCapability:
    def test_declared_tier_matches_controller(self):
        """``batch_replayable`` in the registry is declarative; the
        driver trusts only the hooks on the built controller
        (``batch_plan`` / ``batch_epoch_plan``).  This pin keeps the
        declared tier in agreement with the implementation for every
        spec: stateless designs expose ``batch_plan``, epoch designs
        expose the two-pass protocol without a fallback veto, and
        ``none`` designs expose neither."""
        harness = ExperimentHarness(CONFIG)
        for name in registry.names():
            tier = registry.batch_tier(name)
            controller = make_controller(
                name, harness.hbm_config, harness.dram_config,
                sram_bytes=harness.config.scale.sram_bytes)
            if tier == "stateless":
                assert batch_capable(controller), name
            elif tier == "epoch":
                assert not batch_capable(controller), name
                assert epoch_capable(controller), name
                assert fallback_reason(controller) is None, name
            else:
                assert tier == "none", name
                assert not batch_capable(controller), name
                assert not epoch_capable(controller), name

    def test_engine_coverage_never_silently_drops(self):
        """A refactor that quietly loses a design's batch hooks would
        show up only as a slowdown; fail loudly instead.  17 of the 18
        registered specs vectorize today — all but MemPod."""
        tiers = {name: registry.batch_tier(name)
                 for name in registry.names()}
        capable = [n for n, t in tiers.items() if t != "none"]
        assert len(tiers) >= 18
        assert len(capable) >= 17
        assert [n for n, t in tiers.items() if t == "none"] == ["MemPod"]


class TestEngineObservability:
    def test_cell_timing_records_engine_choice(self):
        harness = ExperimentHarness(CONFIG)
        harness.run_design("Ideal", "mcf")
        timing = harness.cell_timing("Ideal", "mcf")
        assert timing["engine_vector"] == 1.0
        assert timing["engine_scalar"] == 0.0
        assert timing["vector_epochs"] >= 1.0
        harness.run_design("MemPod", "mcf")
        timing = harness.cell_timing("MemPod", "mcf")
        assert timing["engine_vector"] == 0.0
        assert timing["engine_scalar"] == 1.0
        assert timing["scalar_epochs"] >= 1.0
        assert timing["fallback_design_not_batch_capable"] == 1.0

    def test_config_engine_scalar_forces_reference_loop(self):
        config = ExperimentConfig(requests=1200, warmup=400,
                                  workloads=("mcf",), engine="scalar")
        harness = ExperimentHarness(config)
        forced = harness.run_design("Ideal", "mcf")
        assert harness.cell_timing("Ideal", "mcf")["engine_scalar"] == 1.0
        auto = ExperimentHarness(CONFIG).run_design("Ideal", "mcf")
        assert forced == auto

    def test_engine_excluded_from_cache_keys(self):
        """The two engines are bit-identical, so cached results are
        engine-agnostic by construction — like ``trace_cache_dir``."""
        scalar = ExperimentHarness(ExperimentConfig(engine="scalar"))
        auto = ExperimentHarness(ExperimentConfig())
        assert scalar._key_fields("mcf") == auto._key_fields("mcf")

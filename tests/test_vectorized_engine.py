"""The vectorized batch replay engine (``repro.sim.vectorized``).

The contract mirrors ``tests/test_packed_traces.py``'s: the vectorized
kernel is an *engine*, not a model — every :class:`SimResult` it
produces must be bit-identical to the scalar reference loop, across
warm-up boundaries, request caps, epoch sizes, and page-fault-heavy
footprints.  Designs without a batch plan must fall back to the scalar
loop transparently, the registry's declared ``batch_replayable`` flag
must agree with what the built controllers actually implement, and the
harness must record which engine ran in its per-cell timing.
"""

from array import array

import pytest

from repro import ExperimentConfig, ExperimentHarness
from repro.baselines import make_controller
from repro.designs import registry
from repro.sim import SimulationDriver, batch_capable
from repro.traces import SyntheticTraceGenerator, synthetic_spec
from repro.traces.packed import PackedTrace, encode_request

CONFIG = ExperimentConfig(requests=1200, warmup=400, workloads=("mcf",))
BATCH_DESIGNS = ("No-HBM", "Ideal")
N = 1700


def _trace(harness, n=N, seed=None):
    spec = synthetic_spec("mcf", harness.config.scale)
    return SyntheticTraceGenerator(
        spec, seed=seed if seed is not None else harness.config.seed
    ).generate_packed(n)


def _run(harness, design, trace, engine, warmup=0, max_requests=None,
         vector_epoch=None):
    driver = SimulationDriver(harness.config.cpu,
                              vector_epoch=vector_epoch)
    result = driver.run(
        make_controller(design, harness.hbm_config, harness.dram_config,
                        sram_bytes=harness.config.scale.sram_bytes),
        trace, workload="mcf", max_requests=max_requests, warmup=warmup,
        engine=engine)
    return result, driver


class TestBitIdentity:
    def test_batch_designs_identical_to_scalar(self):
        """Vector == scalar over warm-up x cap combinations.

        ``warmup=400, max_requests=200`` pins the cap-inside-warm-up
        edge, where the scalar loop never reaches the measurement
        reset and the whole run is one segment.
        """
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        for design in BATCH_DESIGNS:
            for warmup in (0, 400):
                for cap in (None, 200, 700):
                    scalar, _ = _run(harness, design, trace, "scalar",
                                     warmup=warmup, max_requests=cap)
                    vector, driver = _run(harness, design, trace,
                                          "vector", warmup=warmup,
                                          max_requests=cap)
                    label = (design, warmup, cap)
                    assert driver.last_engine == "vector", label
                    assert vector == scalar, label

    def test_cross_epoch_state_carry(self):
        """Tiny epochs force bank/bus/open-row state across epoch
        boundaries; the result must not change."""
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        for design in BATCH_DESIGNS:
            scalar, _ = _run(harness, design, trace, "scalar",
                             warmup=400)
            vector, driver = _run(harness, design, trace, "vector",
                                  warmup=400, vector_epoch=64)
            assert vector == scalar, design
            # Epochs count per segment: warm-up and measured windows
            # each round up to whole epochs.
            assert driver.last_vector_epochs \
                == -(-400 // 64) + -(-(N - 400) // 64)

    def test_fault_heavy_footprint_identical(self):
        """Addresses past the OS-visible window fault on No-HBM; the
        vectorized fault penalty and accounting must match exactly."""
        harness = ExperimentHarness(CONFIG)
        probe = make_controller("No-HBM", harness.hbm_config,
                                harness.dram_config)
        lines = 2 * probe.os_visible_bytes() // 64
        stride = lines // 400 + 1       # span the whole 2x window
        trace = PackedTrace(array("Q", [
            encode_request((i * stride % lines) * 64, i % 3 == 0,
                           i % 50)
            for i in range(900)]))
        scalar, _ = _run(harness, "No-HBM", trace, "scalar", warmup=100)
        vector, driver = _run(harness, "No-HBM", trace, "vector",
                              warmup=100, vector_epoch=128)
        assert driver.last_engine == "vector"
        assert scalar.controller_stats.get("page_faults", 0) > 0
        assert vector == scalar

    def test_vector_epoch_size_is_invisible(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness)
        results = [
            _run(harness, "Ideal", trace, "vector", warmup=400,
                 vector_epoch=epoch)[0]
            for epoch in (None, 1, 63, 512, 10 ** 6)]
        assert all(result == results[0] for result in results[1:])


class TestFallback:
    def test_unsupported_design_falls_back_to_scalar(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness, n=600)
        scalar, _ = _run(harness, "Bumblebee", trace, "scalar",
                         warmup=200)
        vector, driver = _run(harness, "Bumblebee", trace, "vector",
                              warmup=200)
        assert driver.last_engine == "scalar"
        assert driver.last_vector_epochs == 0
        assert driver.last_scalar_epochs > 0
        assert vector == scalar

    def test_object_stream_stays_scalar(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness, n=600)
        result, driver = _run(harness, "Ideal", iter(trace), "vector",
                              warmup=200)
        assert driver.last_engine == "scalar"
        packed, _ = _run(harness, "Ideal", trace, "scalar", warmup=200)
        assert result == packed

    def test_auto_selects_vector_when_capable(self):
        harness = ExperimentHarness(CONFIG)
        trace = _trace(harness, n=600)
        _, on_batch = _run(harness, "Ideal", trace, "auto")
        assert on_batch.last_engine == "vector"
        _, on_scalar = _run(harness, "Bumblebee", trace, "auto")
        assert on_scalar.last_engine == "scalar"

    def test_unknown_engine_rejected(self):
        harness = ExperimentHarness(CONFIG)
        with pytest.raises(ValueError, match="engine"):
            _run(harness, "Ideal", _trace(harness, n=8), "bogus")


class TestRegistryCapability:
    def test_declared_flag_matches_controller(self):
        """``batch_replayable`` in the registry is declarative; the
        driver trusts only ``batch_plan`` on the built controller.
        This pin keeps the two in agreement for every spec."""
        harness = ExperimentHarness(CONFIG)
        for name in registry.names():
            declared = registry.design(
                registry.spec(name).base).batch_replayable
            controller = make_controller(
                name, harness.hbm_config, harness.dram_config,
                sram_bytes=harness.config.scale.sram_bytes)
            assert batch_capable(controller) == declared, name


class TestEngineObservability:
    def test_cell_timing_records_engine_choice(self):
        harness = ExperimentHarness(CONFIG)
        harness.run_design("Ideal", "mcf")
        timing = harness.cell_timing("Ideal", "mcf")
        assert timing["engine_vector"] == 1.0
        assert timing["engine_scalar"] == 0.0
        assert timing["vector_epochs"] >= 1.0
        harness.run_design("Bumblebee", "mcf")
        timing = harness.cell_timing("Bumblebee", "mcf")
        assert timing["engine_vector"] == 0.0
        assert timing["engine_scalar"] == 1.0
        assert timing["scalar_epochs"] >= 1.0

    def test_config_engine_scalar_forces_reference_loop(self):
        config = ExperimentConfig(requests=1200, warmup=400,
                                  workloads=("mcf",), engine="scalar")
        harness = ExperimentHarness(config)
        forced = harness.run_design("Ideal", "mcf")
        assert harness.cell_timing("Ideal", "mcf")["engine_scalar"] == 1.0
        auto = ExperimentHarness(CONFIG).run_design("Ideal", "mcf")
        assert forced == auto

    def test_engine_excluded_from_cache_keys(self):
        """The two engines are bit-identical, so cached results are
        engine-agnostic by construction — like ``trace_cache_dir``."""
        scalar = ExperimentHarness(ExperimentConfig(engine="scalar"))
        auto = ExperimentHarness(ExperimentConfig())
        assert scalar._key_fields("mcf") == auto._key_fields("mcf")

"""Tests for the bank FSM and the two-priority channel model."""

import pytest

from repro.mem import Bank, RowBufferOutcome, hbm2_config
from repro.mem.channel import MOVEMENT_CHUNK_BYTES, Channel


@pytest.fixture
def timings():
    return hbm2_config().timings


@pytest.fixture
def channel():
    return Channel(hbm2_config(), index=0)


class TestBank:
    def test_first_access_is_closed(self, timings):
        bank = Bank(timings)
        access = bank.access(row=5, now_ns=0.0)
        assert access.outcome is RowBufferOutcome.CLOSED
        assert access.activated
        assert access.data_ns == pytest.approx(timings.row_closed_ns)

    def test_second_access_same_row_hits(self, timings):
        bank = Bank(timings)
        bank.access(5, 0.0)
        access = bank.access(5, 100.0)
        assert access.outcome is RowBufferOutcome.HIT
        assert not access.activated
        assert (access.data_ns - access.issue_ns
                == pytest.approx(timings.row_hit_ns))

    def test_different_row_conflicts(self, timings):
        bank = Bank(timings)
        bank.access(5, 0.0)
        access = bank.access(6, 100.0)
        assert access.outcome is RowBufferOutcome.CONFLICT
        assert (access.data_ns - access.issue_ns
                == pytest.approx(timings.row_conflict_ns))

    def test_bank_self_serialises(self, timings):
        bank = Bank(timings)
        first = bank.access(5, 0.0)
        second = bank.access(5, 0.0)  # issued while busy
        assert second.issue_ns == pytest.approx(first.data_ns)

    def test_precharge_forces_activation(self, timings):
        bank = Bank(timings)
        bank.access(5, 0.0)
        bank.precharge_all()
        access = bank.access(5, 100.0)
        assert access.outcome is RowBufferOutcome.CLOSED

    def test_statistics_count(self, timings):
        bank = Bank(timings)
        bank.access(1, 0.0)
        bank.access(1, 50.0)
        bank.access(2, 100.0)
        assert (bank.closed, bank.hits, bank.conflicts) == (1, 1, 1)

    def test_reset_restores_initial_state(self, timings):
        bank = Bank(timings)
        bank.access(1, 0.0)
        bank.reset()
        assert bank.open_row is None
        assert bank.busy_until_ns == 0.0
        assert bank.hits == bank.closed == bank.conflicts == 0


class TestChannelDemand:
    def test_demand_latency_includes_burst(self, channel):
        config = hbm2_config()
        access = channel.access(bank=0, row=0, nbytes=64, is_write=False,
                                now_ns=0.0)
        expected = config.timings.row_closed_ns + config.burst_ns(64)
        assert access.latency_ns == pytest.approx(expected)

    def test_demand_serialises_on_bus(self, channel):
        a = channel.access(0, 0, 64, False, 0.0)
        b = channel.access(1, 0, 64, False, 0.0)  # different bank, same bus
        assert b.done_ns > a.done_ns

    def test_traffic_counted(self, channel):
        channel.access(0, 0, 64, False, 0.0)
        channel.access(0, 0, 64, True, 100.0)
        assert channel.read_bytes == 64
        assert channel.write_bytes == 64

    def test_energy_counters(self, channel):
        channel.access(0, 0, 64, False, 0.0)   # closed -> activation
        channel.access(0, 0, 64, False, 100.0)  # hit -> no activation
        assert channel.counters.activations == 1
        assert channel.counters.read_bursts == 2


class TestChannelMovement:
    def test_backlog_accumulates_and_drains(self, channel):
        channel.bulk_transfer(64 * 1024, False, now_ns=0.0)
        backlog = channel.movement_backlog_ns(0.0)
        assert backlog > 0
        assert channel.movement_backlog_ns(backlog + 1.0) == 0.0

    def test_demand_interference_bounded_by_chunk(self, channel):
        config = hbm2_config()
        channel.bulk_transfer(1 << 20, False, now_ns=0.0)  # huge backlog
        access = channel.access(0, 0, 64, False, 0.0)
        unloaded = config.timings.row_closed_ns + config.burst_ns(64)
        max_interference = config.burst_ns(MOVEMENT_CHUNK_BYTES)
        assert access.latency_ns <= unloaded + max_interference + 1e-9

    def test_movement_counts_traffic(self, channel):
        channel.bulk_transfer(4096, True, now_ns=0.0)
        assert channel.write_bytes == 4096

    def test_movement_completion_reflects_queue(self, channel):
        first = channel.bulk_transfer(64 * 1024, False, 0.0)
        second = channel.bulk_transfer(64 * 1024, False, 0.0)
        assert second > first

    def test_reset_clears_backlog(self, channel):
        channel.bulk_transfer(1 << 20, False, 0.0)
        channel.reset()
        assert channel.movement_backlog_ns(0.0) == 0.0

"""Tests for the analysis layer: metrics, harness, sweeps, reports."""

import pytest

from repro import ExperimentConfig, ExperimentHarness
from repro.analysis import (
    compare,
    config_with,
    format_figure1,
    format_figure6,
    format_figure7,
    format_figure8,
    format_metadata,
    format_overfetch,
    format_table2,
    geomean_speedup,
    summarise_group,
    sweep_bumblebee,
)
from repro.analysis.experiments import fitted_devices
from repro.analysis.metrics import WorkloadComparison
from repro.core import BumblebeeConfig
from repro.traces import DEFAULT_SCALE, SystemScale

FAST = ExperimentConfig(requests=6000, warmup=2000,
                        workloads=("mcf", "wrf", "leela", "roms"))


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(FAST)


def fake_comparison(workload="mcf", design="X", ipc=1.5):
    return WorkloadComparison(
        workload=workload, design=design, norm_ipc=ipc,
        norm_hbm_traffic=1.0, norm_dram_traffic=0.8, norm_energy=0.9,
        hbm_hit_rate=0.9, overfetch_fraction=0.1,
        metadata_latency_fraction=0.0, page_faults=0)


class TestMetrics:
    def test_compare_rejects_workload_mismatch(self, harness):
        a = harness.baseline("mcf")
        b = harness.baseline("wrf")
        with pytest.raises(ValueError):
            compare(a, b)

    def test_group_summary_geomean(self):
        comparisons = [fake_comparison("mcf", ipc=1.0),
                       fake_comparison("xalancbmk", ipc=4.0)]
        summary = summarise_group(comparisons, "medium")
        assert summary.norm_ipc == pytest.approx(2.0)

    def test_group_summary_rejects_mixed_designs(self):
        comparisons = [fake_comparison("mcf", design="A"),
                       fake_comparison("cam4", design="B")]
        with pytest.raises(ValueError):
            summarise_group(comparisons, "medium")

    def test_group_summary_rejects_empty_group(self):
        with pytest.raises(ValueError):
            summarise_group([fake_comparison("mcf")], "high")

    def test_all_group_includes_everything(self):
        comparisons = [fake_comparison("mcf"), fake_comparison("roms")]
        summary = summarise_group(comparisons, "all")
        assert sorted(summary.workloads) == ["mcf", "roms"]

    def test_geomean_speedup(self):
        assert geomean_speedup([fake_comparison(ipc=1.0),
                                fake_comparison(ipc=4.0)]) \
            == pytest.approx(2.0)


class TestHarness:
    def test_traces_cached(self, harness):
        assert harness.trace("mcf") is harness.trace("mcf")

    def test_baseline_cached(self, harness):
        assert harness.baseline("mcf") is harness.baseline("mcf")

    def test_design_runs_cached(self, harness):
        a = harness.run_design("AlloyCache", "leela")
        b = harness.run_design("AlloyCache", "leela")
        assert a is b

    def test_trace_length_covers_warmup(self, harness):
        assert len(harness.trace("mcf")) == \
            FAST.requests + FAST.warmup

    def test_run_design_produces_comparison(self, harness):
        comparison = harness.run_design("Bumblebee", "mcf")
        assert comparison.norm_ipc > 0
        assert comparison.design == "Bumblebee"

    def test_figure1_buckets_sum_to_one(self, harness):
        results = harness.figure1_line_utilisation(workloads=("mcf",),
                                                   line_sizes=(64, 4096))
        for result in results["mcf"].values():
            assert sum(result.fractions) == pytest.approx(1.0)

    def test_table2_covers_configured_workloads(self, harness):
        rows = harness.table2_characteristics()
        assert {r["benchmark"] for r in rows} == set(FAST.workloads)

    def test_sec4b_metadata_shape(self, harness):
        report = harness.sec4b_metadata()
        assert report["bumblebee"].total_bytes < report["hybrid2_bytes"]


class TestFittedDevices:
    def test_exact_tiling_for_96kb_pages(self):
        hbm, dram = fitted_devices(DEFAULT_SCALE, page_bytes=96 * 1024)
        set_bytes = 96 * 1024 * 8
        assert hbm.geometry.capacity_bytes % set_bytes == 0
        sets = hbm.geometry.capacity_bytes // set_bytes
        assert dram.geometry.capacity_bytes % (96 * 1024 * sets) == 0

    def test_default_page_size_unchanged_capacity(self):
        hbm, dram = fitted_devices(DEFAULT_SCALE)
        assert hbm.geometry.capacity_bytes == DEFAULT_SCALE.hbm_bytes
        assert dram.geometry.capacity_bytes == DEFAULT_SCALE.dram_bytes

    def test_tiny_scale_still_valid(self):
        scale = SystemScale(1.0 / 512.0)
        hbm, dram = fitted_devices(scale)
        assert hbm.geometry.capacity_bytes >= 64 * 1024 * 8


class TestSweep:
    """The legacy single-field sweep API is a deprecation shim over
    DesignSpec grid expansion on the execution plane."""

    def test_config_with_replaces_field(self):
        base = BumblebeeConfig()
        with pytest.deprecated_call():
            modified = config_with(base, zombie_patience=99)
        assert modified.zombie_patience == 99
        assert modified.page_bytes == base.page_bytes

    def test_config_with_rejects_unknown(self):
        with pytest.raises(TypeError):
            config_with(BumblebeeConfig(), nonsense=1)

    def test_sweep_returns_one_entry_per_value(self, harness):
        with pytest.deprecated_call():
            results = sweep_bumblebee(harness, "zombie_patience",
                                      (16, 64), workloads=("leela",))
        assert set(results) == {16, 64}
        assert all(v > 0 for v in results.values())

    def test_sweep_rejects_unknown_field(self, harness):
        with pytest.raises(TypeError, match="nonsense"):
            sweep_bumblebee(harness, "nonsense", (1, 2),
                            workloads=("leela",))

    def test_sweep_matches_design_spec_cells(self, harness):
        # The shim must route through the same DesignSpec cells the
        # registry grid produces — identical geomeans, cached results.
        from repro.analysis.metrics import geomean_speedup
        from repro.designs import DesignSpec
        with pytest.deprecated_call():
            results = sweep_bumblebee(harness, "zombie_patience",
                                      (16,), workloads=("leela",))
        spec = DesignSpec(base="Bumblebee",
                          params={"zombie_patience": 16})
        direct = geomean_speedup(
            [harness.cached_comparison(spec, "leela")])
        assert results[16] == direct


class TestReports:
    def test_figure7_format(self):
        text = format_figure7({"Bumblebee": 2.0, "C-Only": 1.33})
        assert "Bumblebee" in text and "2.00" in text

    def test_figure8_format(self, harness):
        results = harness.figure8_comparison(
            designs=("AlloyCache",), workloads=("mcf",), groups=("all",))
        for metric in ("norm_ipc", "norm_hbm_traffic",
                       "norm_dram_traffic", "norm_energy"):
            assert "AlloyCache" in format_figure8(results, metric)

    def test_figure8_rejects_bad_metric(self, harness):
        results = harness.figure8_comparison(
            designs=("AlloyCache",), workloads=("mcf",), groups=("all",))
        with pytest.raises(KeyError):
            format_figure8(results, "bogus")

    def test_figure1_format(self, harness):
        results = harness.figure1_line_utilisation(workloads=("mcf",),
                                                   line_sizes=(64,))
        text = format_figure1(results)
        assert "[mcf]" in text and "N<5" in text

    def test_table2_format(self, harness):
        text = format_table2(harness.table2_characteristics())
        assert "mcf" in text

    def test_metadata_format(self, harness):
        text = format_metadata(harness.sec4b_metadata())
        assert "334KB" in text

    def test_overfetch_format(self):
        text = format_overfetch({"Bumblebee": 0.133})
        assert "13.3%" in text

    def test_figure6_format(self):
        cell = {"norm_ipc": 1.9, "metadata_bytes": 300 * 1024,
                "fits_sram": True}
        text = format_figure6({(2048, 65536): cell})
        assert "2-64" in text

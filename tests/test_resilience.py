"""Tests of the resilient campaign runtime.

Covers the checkpoint layer (torn-tail recovery, failing-write
absorption), the deterministic backoff and fault-injection primitives,
the supervised worker pool (crash recovery, hang timeouts, quarantine),
and the end-to-end survival contract: a campaign SIGKILL'd mid-flight
and resumed produces a file byte-identical to an uninterrupted run.
"""

import errno
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.campaign import Campaign
from repro.analysis.experiments import ExperimentConfig, ExperimentHarness
from repro.resilience import (
    CheckpointWriter,
    FaultSpec,
    Supervision,
    backoff_delay,
    recover_jsonl,
    run_supervised,
)
from repro.resilience import faults

SRC = str(Path(__file__).resolve().parents[1] / "src")

FAST = ExperimentConfig(requests=800, warmup=200, workloads=("leela",))


# ---- checkpoint layer -----------------------------------------------------


class TestRecoverJsonl:
    def test_clean_file_loads_untouched(self, tmp_path):
        path = tmp_path / "c.jsonl"
        lines = [json.dumps({"i": i}) + "\n" for i in range(3)]
        path.write_text("".join(lines))
        records, dropped = recover_jsonl(path)
        assert [r["i"] for r in records] == [0, 1, 2]
        assert dropped == 0
        assert path.read_text() == "".join(lines)

    def test_torn_tail_dropped_and_compacted(self, tmp_path):
        path = tmp_path / "c.jsonl"
        good = json.dumps({"i": 0}) + "\n"
        path.write_text(good + '{"i": 1, "x"')
        records, dropped = recover_jsonl(path)
        assert [r["i"] for r in records] == [0]
        assert dropped == 1
        assert path.read_text() == good

    def test_mid_file_damage_compacted(self, tmp_path):
        path = tmp_path / "c.jsonl"
        first = json.dumps({"i": 0}) + "\n"
        last = json.dumps({"i": 2}) + "\n"
        path.write_text(first + "##garbage##\n" + last)
        records, dropped = recover_jsonl(path)
        assert [r["i"] for r in records] == [0, 2]
        assert dropped == 1
        assert path.read_text() == first + last

    def test_missing_trailing_newline_repaired(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"i": 0}))
        records, dropped = recover_jsonl(path)
        assert records == [{"i": 0}] and dropped == 0
        assert path.read_text().endswith("\n")

    def test_non_dict_lines_dropped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"i": 0}\n[1, 2]\n')
        records, dropped = recover_jsonl(path)
        assert records == [{"i": 0}] and dropped == 1


class TestCheckpointWriter:
    def test_appends_one_line_per_record(self, tmp_path):
        writer = CheckpointWriter(tmp_path / "c.jsonl")
        assert writer.append({"i": 0}) and writer.append({"i": 1})
        records, dropped = recover_jsonl(tmp_path / "c.jsonl")
        assert [r["i"] for r in records] == [0, 1] and dropped == 0
        assert not writer.pending

    def test_failing_writes_park_in_order_then_flush(self, tmp_path):
        writer = CheckpointWriter(tmp_path / "c.jsonl")
        faults.install(FaultSpec(checkpoint=1.0))
        try:
            for i in range(4):
                assert not writer.append({"i": i}, tag=f"cell{i}")
            assert len(writer.pending) == 4
            assert writer.write_errors >= 4
            assert not (tmp_path / "c.jsonl").exists()
        finally:
            faults.uninstall()
        assert writer.flush_pending()
        records, _ = recover_jsonl(tmp_path / "c.jsonl")
        assert [r["i"] for r in records] == [0, 1, 2, 3]

    def test_later_append_drains_earlier_pending_first(self, tmp_path):
        writer = CheckpointWriter(tmp_path / "c.jsonl")
        faults.install(FaultSpec(checkpoint=1.0))
        try:
            writer.append({"i": 0})
        finally:
            faults.uninstall()
        assert writer.append({"i": 1})
        records, _ = recover_jsonl(tmp_path / "c.jsonl")
        assert [r["i"] for r in records] == [0, 1]


# ---- deterministic primitives ---------------------------------------------


class TestBackoff:
    POLICY = Supervision(backoff_base_s=0.05, backoff_cap_s=2.0, seed=7)

    def test_deterministic(self):
        assert backoff_delay(self.POLICY, "k", 1) == \
            backoff_delay(self.POLICY, "k", 1)

    def test_varies_by_key_and_attempt(self):
        delays = {backoff_delay(self.POLICY, key, attempt)
                  for key in ("a", "b") for attempt in (0, 1, 2)}
        assert len(delays) == 6

    def test_grows_until_capped(self):
        assert all(backoff_delay(self.POLICY, "k", a) <= 2.0
                   for a in range(12))
        assert backoff_delay(self.POLICY, "k", 11) == 2.0


class TestFaults:
    def test_spec_env_round_trip(self):
        spec = FaultSpec(seed=3, crash=0.5, hang=0.25, hang_s=4.0,
                         checkpoint=0.1, match="mcf", once=True)
        assert FaultSpec.from_env(spec.to_env()) == spec

    def test_checkpoint_error_fires_with_posix_errno(self):
        injector = faults.FaultInjector(FaultSpec(checkpoint=1.0))
        with pytest.raises(OSError) as exc:
            injector.checkpoint_error("cell", 1)
        assert exc.value.errno in (errno.ENOSPC, errno.EIO)

    def test_match_filters_keys(self):
        injector = faults.FaultInjector(
            FaultSpec(checkpoint=1.0, match="mcf"))
        injector.checkpoint_error("Bumblebee::leela", 1)  # no raise
        with pytest.raises(OSError):
            injector.checkpoint_error("Bumblebee::mcf", 1)

    def test_once_restricts_to_attempt_zero(self):
        injector = faults.FaultInjector(FaultSpec(crash=1.0, once=True))
        assert injector._fires("crash", 1.0, "k", 0)
        assert not injector._fires("crash", 1.0, "k", 1)

    def test_corrupt_file_modes(self, tmp_path):
        original = bytes(range(200))
        for mode in ("flip", "truncate", "garbage"):
            victim = tmp_path / f"{mode}.bin"
            victim.write_bytes(original)
            faults.corrupt_file(victim, seed=1, mode=mode)
            assert victim.read_bytes() != original


# ---- supervised pool ------------------------------------------------------


def _double(payload):
    """Worker: trivial pure function."""
    return payload * 2


def _fail_until_marker(payload):
    """Worker: fail once per marker file, succeed after."""
    marker, value = payload
    if not os.path.exists(marker):
        Path(marker).touch()
        raise ValueError("first attempt fails")
    return value


class TestRunSupervised:
    def test_plain_completion(self):
        tasks = [(f"k{i}", i) for i in range(5)]
        results, quarantined = run_supervised(_double, tasks, jobs=2)
        assert results == {f"k{i}": i * 2 for i in range(5)}
        assert not quarantined

    def test_completion_order_hook(self):
        seen = []
        run_supervised(_double, [(f"k{i}", i) for i in range(3)], jobs=1,
                       on_complete=lambda key, _: seen.append(key))
        assert seen == ["k0", "k1", "k2"]

    def test_worker_exception_retried(self, tmp_path):
        marker = str(tmp_path / "marker")
        policy = Supervision(max_attempts=3, backoff_base_s=0.01,
                             backoff_cap_s=0.05)
        results, quarantined = run_supervised(
            _fail_until_marker, [("k", (marker, 42))], jobs=1,
            policy=policy)
        assert results == {"k": 42} and not quarantined

    def test_injected_crash_recovered_by_retry(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV,
                           FaultSpec(crash=1.0, once=True).to_env())
        policy = Supervision(max_attempts=3, backoff_base_s=0.01,
                             backoff_cap_s=0.05)
        results, quarantined = run_supervised(
            _double, [(f"k{i}", i) for i in range(3)], jobs=2,
            policy=policy)
        assert results == {f"k{i}": i * 2 for i in range(3)}
        assert not quarantined

    def test_persistent_crash_quarantined(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV,
                           FaultSpec(crash=1.0, match="k1").to_env())
        failures = []
        policy = Supervision(max_attempts=2, backoff_base_s=0.01,
                             backoff_cap_s=0.05)
        results, quarantined = run_supervised(
            _double, [(f"k{i}", i) for i in range(3)], jobs=2,
            policy=policy,
            on_quarantine=lambda key, failure: failures.append(failure))
        assert results == {"k0": 0, "k2": 4}
        assert set(quarantined) == {"k1"}
        assert len(failures[0].attempts) == 2
        assert f"exit {faults.CRASH_EXIT}" in failures[0].attempts[0]

    def test_hang_timed_out_and_retried(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV,
                           FaultSpec(hang=1.0, hang_s=20.0,
                                     once=True).to_env())
        policy = Supervision(timeout_s=0.5, max_attempts=3,
                             backoff_base_s=0.01, backoff_cap_s=0.05)
        start = time.monotonic()
        results, quarantined = run_supervised(
            _double, [("k0", 5)], jobs=1, policy=policy)
        assert results == {"k0": 10} and not quarantined
        assert time.monotonic() - start < 15.0


# ---- campaign-level resilience --------------------------------------------


class TestCampaignResilience:
    def test_torn_tail_heals_and_resumes_bit_identically(self, tmp_path):
        config = ExperimentConfig(
            requests=600, warmup=150, workloads=("leela",),
            trace_cache_dir=str(tmp_path / "tc"))
        ref = tmp_path / "ref.jsonl"
        Campaign(ExperimentHarness(config), ref,
                 record_timing=False).run(["Bumblebee", "Banshee"],
                                          ["leela"])
        reference = ref.read_bytes()
        assert reference.count(b"\n") == 2

        torn = tmp_path / "torn.jsonl"
        lines = reference.splitlines(keepends=True)
        torn.write_bytes(lines[0] + lines[1][:23])
        campaign = Campaign(ExperimentHarness(config), torn,
                            record_timing=False)
        assert campaign.recovered_lines == 1
        assert campaign.completed_cells == 1
        campaign.run(["Bumblebee", "Banshee"], ["leela"])
        assert torn.read_bytes() == reference

    def test_quarantined_cell_reported_not_fatal(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(
            faults.CHAOS_ENV,
            FaultSpec(crash=1.0, match="Banshee::leela").to_env())
        config = ExperimentConfig(
            requests=600, warmup=150, workloads=("leela",),
            trace_cache_dir=str(tmp_path / "tc"))
        campaign = Campaign(ExperimentHarness(config),
                            tmp_path / "c.jsonl", record_timing=False)
        campaign.run(["Bumblebee", "Banshee"], ["leela"],
                     supervise=Supervision(max_attempts=2,
                                           backoff_base_s=0.01,
                                           backoff_cap_s=0.05))
        assert campaign.completed_cells == 1
        assert [f"{q.design}::{q.workload}"
                for q in campaign.quarantined] == ["Banshee::leela"]
        report = campaign.render_quarantine()
        assert report.startswith("[SKIP] Banshee::leela:")
        assert "2 attempts" in report


# ---- kill / resume end to end ---------------------------------------------


_CAMPAIGN_SCRIPT = """
import sys
from repro.analysis.campaign import Campaign
from repro.analysis.experiments import ExperimentConfig, ExperimentHarness
from repro.resilience.supervisor import Supervision

config = ExperimentConfig(requests=600, warmup=150, workloads=("leela",),
                          trace_cache_dir=sys.argv[2])
campaign = Campaign(ExperimentHarness(config), sys.argv[1],
                    record_timing=False)
campaign.run(["Bumblebee", "Banshee"], ["leela"], jobs=1,
             supervise=Supervision(timeout_s=None, max_attempts=2))
"""


def _spawn_campaign(path, trace_cache, fault_spec):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env[faults.CHAOS_ENV] = fault_spec.to_env()
    return subprocess.Popen(
        [sys.executable, "-c", _CAMPAIGN_SCRIPT, str(path),
         str(trace_cache)], env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _await_lines(proc, path, count, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        assert proc.poll() is None, \
            f"campaign exited early (code {proc.returncode})"
        if path.exists() and path.read_bytes().count(b"\n") >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"campaign never persisted {count} cells")


class TestKillResume:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        config = ExperimentConfig(
            requests=600, warmup=150, workloads=("leela",),
            trace_cache_dir=str(tmp_path / "tc"))
        ref = tmp_path / "ref.jsonl"
        Campaign(ExperimentHarness(config), ref,
                 record_timing=False).run(["Bumblebee", "Banshee"],
                                          ["leela"])
        reference = ref.read_bytes()

        path = tmp_path / "killed.jsonl"
        # The second (last) cell wedges, so the kill point is after
        # exactly one fsync'd record.
        proc = _spawn_campaign(
            path, tmp_path / "tc",
            FaultSpec(hang=1.0, hang_s=60.0, match="Banshee::leela"))
        try:
            _await_lines(proc, path, 1)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait()

        campaign = Campaign(ExperimentHarness(config), path,
                            record_timing=False)
        assert campaign.completed_cells == 1
        campaign.run(["Bumblebee", "Banshee"], ["leela"])
        assert path.read_bytes() == reference

    def test_sigterm_exits_130_with_resume_hint(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env[faults.CHAOS_ENV] = FaultSpec(
            hang=1.0, hang_s=60.0, match="Banshee::leela").to_env()
        path = tmp_path / "c.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign",
             "--out", str(path), "--designs", "Bumblebee", "Banshee",
             "--workloads", "leela", "--requests", "600",
             "--warmup", "150", "--supervise",
             "--trace-cache", str(tmp_path / "tc")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            _await_lines(proc, path, 1)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 130
        assert "rerun with --resume to continue" in stderr
        # The interrupted file holds the completed prefix.
        records, dropped = recover_jsonl(path)
        assert dropped == 0
        assert [r["design"] for r in records] == ["Bumblebee"]


# ---- advisory file locking ------------------------------------------------


FLOCK_PROBE = """
import fcntl, sys
handle = open(sys.argv[1], "a+")
try:
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
except OSError:
    sys.exit(3)
sys.exit(0)
"""

LOCKED_APPEND = """
import sys
sys.path.insert(0, sys.argv[2])
from repro.resilience import CheckpointWriter
CheckpointWriter(sys.argv[1]).append({"i": 1}, tag="child")
"""


class TestFileLock:
    def test_lock_held_excludes_other_processes(self, tmp_path):
        pytest.importorskip("fcntl")
        from repro.resilience import FileLock
        target = tmp_path / "c.jsonl"
        lock_file = f"{target}.lock"
        with FileLock(target):
            probe = subprocess.run(
                [sys.executable, "-c", FLOCK_PROBE, lock_file])
            assert probe.returncode == 3      # lock observed held
        probe = subprocess.run(
            [sys.executable, "-c", FLOCK_PROBE, lock_file])
        assert probe.returncode == 0          # and released

    def test_append_waits_for_compaction_lock(self, tmp_path):
        # Regression: recover_jsonl's read-then-replace compaction and a
        # concurrent CheckpointWriter append must serialise, not
        # interleave (an append landing between the read and the
        # replace used to be silently discarded).
        pytest.importorskip("fcntl")
        from repro.resilience import FileLock
        path = tmp_path / "c.jsonl"
        with FileLock(path):                  # stand in for compaction
            child = subprocess.Popen(
                [sys.executable, "-c", LOCKED_APPEND, str(path), SRC])
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and child.poll() is None:
                time.sleep(0.05)
            assert child.poll() is None       # append blocked on lock
            assert not path.exists()
        child.wait(timeout=30)
        records, dropped = recover_jsonl(path)
        assert ([r["i"] for r in records], dropped) == ([1], 0)

    def test_recover_compacts_under_lock(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"i": 0}) + "\n" + '{"torn')
        records, dropped = recover_jsonl(path)
        assert ([r["i"] for r in records], dropped) == ([0], 1)
        # The lock sibling exists and is reusable, not the target inode.
        assert Path(f"{path}.lock").exists()
        assert path.read_text() == json.dumps({"i": 0}) + "\n"


# ---- torn shared-cache entries -------------------------------------------


class TestTornCacheReads:
    def test_trace_cache_torn_put_is_miss_not_error(self, tmp_path):
        from repro.traces import TraceCache, synthetic_spec
        from repro.traces.spec import SystemScale
        spec = synthetic_spec("mcf", SystemScale(1 / 256))
        cache = TraceCache(tmp_path)
        trace = cache.get_or_generate(spec, 2000, 9)
        entry = next(Path(tmp_path).glob("*.trace"))
        # A concurrent put observed before its final rename: valid
        # header, payload cut short.
        entry.write_bytes(entry.read_bytes()[:-16])
        fresh = TraceCache(tmp_path)
        assert fresh.get(spec, 2000, 9) is None
        assert fresh.counters()["misses"] == 1
        assert not entry.exists()             # poisoned entry dropped
        assert fresh.get_or_generate(spec, 2000, 9) == trace

    def test_trace_cache_transient_torn_read_retries(self, tmp_path):
        from repro.traces import TraceCache, synthetic_spec
        from repro.traces.spec import SystemScale
        spec = synthetic_spec("mcf", SystemScale(1 / 256))
        cache = TraceCache(tmp_path)
        trace = cache.get_or_generate(spec, 2000, 9)
        fresh = TraceCache(tmp_path)
        real = fresh._read_entry
        observed = []
        def flaky(path):
            if not observed:                  # first read sees the torn
                observed.append(path)         # in-flight put
                raise ValueError("torn concurrent put")
            return real(path)
        fresh._read_entry = flaky
        assert fresh.get(spec, 2000, 9) == trace
        assert fresh.counters()["hits"] == 1
        assert next(Path(tmp_path).glob("*.trace")).exists()

    def test_result_cache_torn_put_is_miss_not_error(self, tmp_path):
        from repro.analysis.resultcache import ResultCache
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"norm_ipc": 1.5})
        entry = tmp_path / f"{key}.json"
        entry.write_bytes(entry.read_bytes()[:-8])
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.misses == 1
        assert not entry.exists()             # poisoned entry dropped
        cache.put(key, {"norm_ipc": 1.5})     # recompute heals
        assert fresh.get(key) == {"norm_ipc": 1.5}

    def test_result_cache_transient_torn_read_retries(self, tmp_path):
        from repro.analysis.resultcache import ResultCache
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"norm_ipc": 0.75})
        real = cache._read_entry
        observed = []
        def flaky(path):
            if not observed:
                observed.append(path)
                raise ValueError("torn concurrent put")
            return real(path)
        cache._read_entry = flaky
        assert cache.get(key) == {"norm_ipc": 0.75}
        assert (cache.hits, cache.misses) == (1, 0)
        assert (tmp_path / f"{key}.json").exists()

"""Integration tests for the Bumblebee controller (HMMC)."""

import pytest

from repro.core import (
    AllocationPolicy,
    BumblebeeConfig,
    BumblebeeController,
    WayMode,
)
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import MemoryRequest, ServicedBy, SimulationDriver
from repro.traces import SyntheticSpec, SyntheticTraceGenerator

MIB = 1 << 20
KIB = 1 << 10


def make_controller(config=None, hbm_mb=8, dram_mb=80):
    return BumblebeeController(hbm2_config(hbm_mb * MIB),
                               ddr4_3200_config(dram_mb * MIB),
                               config or BumblebeeConfig())


def hammer(controller, addrs, writes=False, start_ns=0.0, step_ns=50.0):
    """Drive a list of addresses through the controller."""
    now = start_ns
    results = []
    for addr in addrs:
        results.append(controller.access(
            MemoryRequest(addr=addr, is_write=writes), now))
        now += step_ns
    return results


class TestAccessPath:
    def test_first_access_allocates(self):
        controller = make_controller()
        controller.access(MemoryRequest(addr=0), 0.0)
        set_index, orig = controller.geometry.locate(0)
        assert controller.prt[set_index].is_allocated(orig)
        controller.check_invariants()

    def test_page_count_allocates_within_slots(self):
        controller = make_controller()
        page = controller.config.page_bytes
        for i in range(200):
            controller.access(MemoryRequest(addr=i * page), float(i * 50))
        controller.check_invariants()

    def test_mhbm_resident_page_hits_hbm(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.HBM)
        controller = make_controller(config)
        first = controller.access(MemoryRequest(addr=0), 0.0)
        again = controller.access(MemoryRequest(addr=64), 100.0)
        assert first.serviced_by is ServicedBy.HBM
        assert again.hbm_hit

    def test_dram_page_served_from_dram(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.DRAM)
        controller = make_controller(config)
        result = controller.access(MemoryRequest(addr=0), 0.0)
        assert result.serviced_by is ServicedBy.DRAM

    def test_cached_block_hits_after_fill(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.DRAM)
        controller = make_controller(config)
        # First access misses and caches the block (SL<=0, low Rh).
        controller.access(MemoryRequest(addr=0), 0.0)
        result = controller.access(MemoryRequest(addr=64), 100.0)
        assert result.hbm_hit
        controller.check_invariants()

    def test_metadata_latency_zero_by_default(self):
        controller = make_controller()
        result = controller.access(MemoryRequest(addr=0), 0.0)
        assert result.metadata_ns == 0.0

    def test_meta_h_pays_metadata_latency(self):
        config = BumblebeeConfig(metadata_in_hbm=True)
        controller = make_controller(config)
        result = controller.access(MemoryRequest(addr=0), 0.0)
        assert result.metadata_ns > 0.0


class TestModeSwitch:
    def test_chbm_to_mhbm_switch_on_most_blocks(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.DRAM)
        controller = make_controller(config)
        block = config.block_bytes
        # Touch more than half the blocks of page 0.
        addrs = [b * block for b in range(config.most_blocks_threshold + 1)]
        hammer(controller, addrs)
        assert controller.stats.get("switch_c2m") >= 1
        set_index, orig = controller.geometry.locate(0)
        slot = controller.prt[set_index].slot_of(orig)
        assert controller.geometry.is_hbm_slot(slot)
        controller.check_invariants()

    def test_static_partition_never_switches(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.DRAM,
                                 fixed_chbm_ways=4)
        controller = make_controller(config)
        block = config.block_bytes
        addrs = [b * block for b in range(config.blocks_per_page)]
        hammer(controller, addrs)
        assert controller.stats.get("switch_c2m") == 0
        controller.check_invariants()

    def test_multiplexed_switch_moves_only_missing_blocks(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.DRAM)
        controller = make_controller(config)
        block = config.block_bytes
        addrs = [b * block for b in range(config.most_blocks_threshold + 1)]
        hammer(controller, addrs)
        switch_bytes = controller.stats.get("mode_switch_bytes")
        assert 0 < switch_bytes < config.page_bytes

    def test_no_multi_switch_moves_full_page(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.DRAM,
                                 multiplexed=False)
        controller = make_controller(config)
        block = config.block_bytes
        addrs = [b * block for b in range(config.most_blocks_threshold + 1)]
        hammer(controller, addrs)
        assert controller.stats.get("mode_switch_bytes") \
            >= config.page_bytes


class TestAllocation:
    def test_alloc_h_prefers_hbm(self):
        controller = make_controller(
            BumblebeeConfig(allocation=AllocationPolicy.HBM))
        page = controller.config.page_bytes
        hammer(controller, [i * page for i in range(4)])
        assert controller.stats.get("alloc_hbm") == 4

    def test_alloc_d_prefers_dram(self):
        controller = make_controller(
            BumblebeeConfig(allocation=AllocationPolicy.DRAM))
        page = controller.config.page_bytes
        hammer(controller, [i * page for i in range(4)])
        assert controller.stats.get("alloc_dram") == 4

    def test_alloc_h_falls_back_when_hbm_full(self):
        controller = make_controller(
            BumblebeeConfig(allocation=AllocationPolicy.HBM))
        g = controller.geometry
        page = controller.config.page_bytes
        # Touch more pages of one set than it has HBM ways.
        addrs = [(i * g.sets) * page for i in range(g.hbm_ways + 3)]
        hammer(controller, addrs)
        assert controller.stats.get("alloc_dram") == 3
        controller.check_invariants()

    def test_every_os_page_allocatable(self):
        """The whole flat OS space allocates without error (capacity
        invariant: original indexes == slots)."""
        controller = make_controller(hbm_mb=4, dram_mb=40)
        g = controller.geometry
        page = controller.config.page_bytes
        for orig in range(g.slots_per_set):
            controller.access(
                MemoryRequest(addr=(orig * g.sets) * page), orig * 50.0)
        rset = controller.prt[0]
        assert rset.allocated_count() == g.slots_per_set
        controller.check_invariants()


class TestEvictionAndBuffering:
    def fill_set_with_mhbm(self, controller, extra=0):
        """Allocate hbm_ways + extra pages of set 0 (HBM-first)."""
        g = controller.geometry
        page = controller.config.page_bytes
        addrs = [(i * g.sets) * page for i in range(g.hbm_ways + extra)]
        hammer(controller, addrs)
        return addrs

    def test_buffering_converts_mhbm_to_chbm(self):
        controller = make_controller(
            BumblebeeConfig(allocation=AllocationPolicy.HBM))
        self.fill_set_with_mhbm(controller)
        g = controller.geometry
        page = controller.config.page_bytes
        # A hot DRAM page wants in: repeated access builds hotness.
        hot_addr = (g.hbm_ways + 1) * g.sets * page
        hammer(controller, [hot_addr + i * 64 for i in range(40)])
        assert controller.stats.get("switch_m2c") >= 1
        controller.check_invariants()

    def test_buffered_page_evicts_at_full_page_cost(self):
        """A buffered (all-dirty) page's eviction writes the whole page
        back — the §III-E cost of the data living only in HBM."""
        controller = make_controller(
            BumblebeeConfig(allocation=AllocationPolicy.HBM))
        self.fill_set_with_mhbm(controller)
        g = controller.geometry
        page = controller.config.page_bytes
        hot_addr = (g.hbm_ways + 1) * g.sets * page
        hammer(controller, [hot_addr + i * 64 for i in range(40)])
        assert controller.stats.get("switch_m2c") >= 1
        assert controller.stats.get("chbm_evictions") >= 1
        assert controller.stats.get("writeback_bytes") >= page

    def test_overfetch_accounted_at_eviction(self):
        """A 2KB block fetched for one 64B line charges 2048-64 unused
        bytes when (and only when) the way is evicted."""
        controller = make_controller(
            BumblebeeConfig(allocation=AllocationPolicy.DRAM))
        hammer(controller, [0])
        assert controller.stats.get("overfetch_bytes") == 0  # resident
        set_index, _ = controller.geometry.locate(0)
        way = 0
        assert controller.ble[set_index][way].mode is WayMode.CHBM
        controller._evict_chbm_way(set_index, way, 1_000.0)
        assert controller.stats.get("overfetch_bytes") == 2048 - 64


class TestHighMemoryFootprint:
    def test_beyond_dram_address_triggers_flush(self):
        controller = make_controller()
        high_addr = controller.dram.capacity_bytes + 4096
        controller.access(MemoryRequest(addr=high_addr), 0.0)
        assert controller.stats.get("hmf_flushes") >= 1

    def test_flush_disables_chbm_in_batch(self):
        controller = make_controller()
        high_addr = controller.dram.capacity_bytes + 4096
        controller.access(MemoryRequest(addr=high_addr), 0.0)
        assert any(controller._chbm_disabled)

    def test_cooldown_reenables(self):
        controller = make_controller()
        high_addr = controller.dram.capacity_bytes + 4096
        controller.access(MemoryRequest(addr=high_addr), 0.0)
        for i in range(controller.config.hmf_cooldown_requests + 1):
            controller.access(MemoryRequest(addr=64 * i), 100.0 + i)
        assert not any(controller._chbm_disabled)

    def test_no_hmf_disables_footprint_machinery(self):
        controller = make_controller(BumblebeeConfig(hmf_enabled=False))
        high_addr = controller.dram.capacity_bytes + 4096
        controller.access(MemoryRequest(addr=high_addr), 0.0)
        assert controller.stats.get("hmf_flushes") == 0

    def test_os_visible_includes_hbm_when_adaptive(self):
        controller = make_controller()
        assert controller.os_visible_bytes() == \
            controller.dram.capacity_bytes + controller.hbm.capacity_bytes

    def test_os_visible_excludes_chbm_when_static(self):
        controller = make_controller(BumblebeeConfig(fixed_chbm_ways=8))
        assert controller.os_visible_bytes() == \
            controller.dram.capacity_bytes


class TestEndToEnd:
    @pytest.mark.parametrize("spatial,temporal", [(0.9, 0.9), (0.1, 0.9),
                                                  (0.9, 0.1), (0.3, 0.3)])
    def test_invariants_hold_under_load(self, spatial, temporal):
        controller = make_controller()
        spec = SyntheticSpec("load", footprint_bytes=24 * MIB,
                             spatial=spatial, temporal=temporal, mpki=16.0)
        trace = SyntheticTraceGenerator(spec, seed=9).generate(8000)
        driver = SimulationDriver()
        result = driver.run(controller, trace, workload="load")
        controller.check_invariants()
        assert result.requests == 8000
        assert result.ipc > 0

    def test_faster_than_no_hbm_on_hot_workload(self):
        from repro.baselines import NoHBMController
        spec = SyntheticSpec("hot", footprint_bytes=4 * MIB, spatial=0.8,
                             temporal=0.9, mpki=20.0, hot_fraction=0.3)
        trace = SyntheticTraceGenerator(spec, seed=3).generate(20000)
        driver = SimulationDriver()
        base = driver.run(NoHBMController(ddr4_3200_config(80 * MIB)),
                          trace, workload="hot")
        bee = driver.run(make_controller(), trace, workload="hot")
        assert bee.normalised_ipc(base) > 1.1

    def test_metadata_budget_scales_with_system(self):
        small = make_controller(hbm_mb=8, dram_mb=80)
        large = make_controller(hbm_mb=16, dram_mb=160)
        assert large.metadata_bytes() > small.metadata_bytes()

    def test_deterministic_replay(self):
        spec = SyntheticSpec("det", footprint_bytes=8 * MIB, spatial=0.5,
                             temporal=0.5, mpki=10.0)
        trace = SyntheticTraceGenerator(spec, seed=5).generate(5000)
        driver = SimulationDriver()
        a = driver.run(make_controller(), trace, workload="det")
        b = driver.run(make_controller(), trace, workload="det")
        assert a.elapsed_ns == b.elapsed_ns
        assert a.controller_stats == b.controller_stats

"""Tests for the Figure 1 line-utilisation analyzer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.utilisation import (
    FIG1_BUCKET_BOUNDS,
    FIG1_LINE_SIZES,
    LineUtilisationAnalyzer,
    characterise,
)

MIB = 1 << 20


class TestAnalyzer:
    def test_validation(self):
        with pytest.raises(ValueError):
            LineUtilisationAnalyzer(1 * MIB, 1000)  # not 64B multiple
        with pytest.raises(ValueError):
            LineUtilisationAnalyzer(1 * MIB + 7, 64)

    def test_single_access_lands_in_lowest_bucket(self):
        analyzer = LineUtilisationAnalyzer(64 * 1024, 64)
        analyzer.record(0)
        result = analyzer.finish()
        assert result.fractions[0] == pytest.approx(1.0)

    def test_hot_line_lands_in_top_bucket(self):
        analyzer = LineUtilisationAnalyzer(64 * 1024, 64)
        for _ in range(25):
            analyzer.record(0)
        result = analyzer.finish()
        assert result.fractions[-1] == pytest.approx(1.0)

    def test_average_over_line_chunks(self):
        # 256B line = four 64B chunks; 8 accesses to one chunk -> N = 2.
        analyzer = LineUtilisationAnalyzer(64 * 1024, 256)
        for _ in range(8):
            analyzer.record(0)
        result = analyzer.finish()
        assert result.mean_access_number == pytest.approx(2.0)
        assert result.fractions[0] == pytest.approx(1.0)  # N=2 < 5

    def test_lru_eviction_order(self):
        # Two-line capacity: third distinct line evicts the oldest.
        analyzer = LineUtilisationAnalyzer(128, 64)
        analyzer.record(0)
        analyzer.record(64)
        analyzer.record(128)  # evicts line 0
        result = analyzer.finish()
        assert result.evicted_lines == 3

    def test_reuse_refreshes_lru(self):
        analyzer = LineUtilisationAnalyzer(128, 64)
        analyzer.record(0)
        analyzer.record(64)
        analyzer.record(0)      # refresh line 0
        analyzer.record(128)    # should evict line 64, not 0
        analyzer.record(0)      # still resident: no new eviction
        result = analyzer.finish()
        # lines retired: 64 (evicted) + 0 and 128 at finish = 3 total
        assert result.evicted_lines == 3

    def test_characterise_covers_all_sizes(self):
        addresses = list(range(0, 1 << 20, 64)) * 3
        results = characterise(addresses, capacity_bytes=2 * MIB)
        assert set(results) == set(FIG1_LINE_SIZES)
        for result in results.values():
            assert sum(result.fractions) == pytest.approx(1.0)

    def test_streaming_pattern_low_n_everywhere(self):
        """Pure streaming (xz-like): every line sees each chunk once."""
        addresses = list(range(0, 4 * MIB, 64))
        results = characterise(addresses, capacity_bytes=1 * MIB,
                               line_sizes=[64, 4096])
        for result in results.values():
            assert result.fractions[0] > 0.95  # N < 5 dominates

    def test_hot_loop_high_n_at_all_sizes(self):
        """mcf-like: a compact hot region reused heavily scores high N
        even at large line sizes."""
        hot = [addr for _ in range(30) for addr in range(0, 64 * 1024, 64)]
        results = characterise(hot, capacity_bytes=1 * MIB,
                               line_sizes=[64, 65536])
        for result in results.values():
            assert result.fractions[-1] > 0.9  # N >= 20

    def test_scattered_hot_lines_collapse_at_large_lines(self):
        """wrf-like: isolated hot 64B lines score high N at 64B but the
        per-chunk average collapses inside 64KB lines."""
        stride = 64 * 1024
        hot_lines = [i * stride for i in range(16)]
        addresses = [addr for _ in range(30) for addr in hot_lines]
        results = characterise(addresses, capacity_bytes=4 * MIB,
                               line_sizes=[64, 65536])
        assert results[64].fractions[-1] > 0.9
        assert results[65536].fractions[0] > 0.9


class TestAnalyzerProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    def test_fractions_always_sum_to_one(self, addresses):
        analyzer = LineUtilisationAnalyzer(32 * 1024, 256)
        for addr in addresses:
            analyzer.record(addr)
        result = analyzer.finish()
        assert sum(result.fractions) == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    def test_retired_lines_cover_every_distinct_line(self, addresses):
        analyzer = LineUtilisationAnalyzer(1 * MIB, 64)
        for addr in addresses:
            analyzer.record(addr)
        result = analyzer.finish()
        distinct = {a // 64 for a in addresses}
        assert result.evicted_lines == len(distinct)

"""Corner-path tests for the HMMC: swaps, flush rotation, failure modes."""

import pytest

from repro.core import (
    AllocationPolicy,
    BumblebeeConfig,
    BumblebeeController,
    WayMode,
)
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import MemoryRequest

MIB = 1 << 20


def make(config=None, hbm_mb=4, dram_mb=40):
    return BumblebeeController(hbm2_config(hbm_mb * MIB),
                               ddr4_3200_config(dram_mb * MIB),
                               config or BumblebeeConfig())


def touch(controller, addr, times=1, start=0.0, is_write=False):
    now = start
    result = None
    for _ in range(times):
        result = controller.access(MemoryRequest(addr=addr,
                                                 is_write=is_write), now)
        now += 50.0
    return result, now


class TestFullSetSwap:
    def fill_set_completely(self, controller):
        """Allocate every slot of set 0 (m DRAM + n HBM pages)."""
        g = controller.geometry
        page = controller.config.page_bytes
        now = 0.0
        for orig in range(g.slots_per_set):
            controller.access(
                MemoryRequest(addr=(orig * g.sets) * page), now)
            now += 50.0
        return now

    def test_swap_triggers_when_set_full(self):
        config = BumblebeeConfig(allocation=AllocationPolicy.HBM,
                                 hmf_enabled=True)
        controller = make(config)
        g = controller.geometry
        page = controller.config.page_bytes
        now = self.fill_set_completely(controller)
        # Hammer one DRAM-resident page until it is hotter than the
        # coldest HBM page; §III-E HMF rule (4) must swap it in.
        victim_orig = None
        rset = controller.prt[0]
        for orig in range(g.slots_per_set):
            if not g.is_hbm_slot(rset.slot_of(orig)):
                victim_orig = orig
                break
        assert victim_orig is not None
        addr = (victim_orig * g.sets) * page
        for i in range(1200):
            controller.access(
                MemoryRequest(addr=addr + (i % 1024) * 64), now)
            now += 20.0
        assert controller.stats.get("swaps") >= 1
        assert g.is_hbm_slot(controller.prt[0].slot_of(victim_orig))
        controller.check_invariants()

    def test_swap_preserves_capacity(self):
        """After a swap, the set still holds every allocated page."""
        config = BumblebeeConfig(allocation=AllocationPolicy.HBM)
        controller = make(config)
        g = controller.geometry
        now = self.fill_set_completely(controller)
        rset = controller.prt[0]
        assert rset.allocated_count() == g.slots_per_set
        page = controller.config.page_bytes
        for i in range(1500):
            controller.access(
                MemoryRequest(addr=(i % g.slots_per_set) * g.sets * page),
                now)
            now += 20.0
        assert rset.allocated_count() == g.slots_per_set
        controller.check_invariants()


class TestGlobalFlushRotation:
    def test_cursor_rotates_through_sets(self):
        config = BumblebeeConfig(hmf_batch_sets=2)
        controller = make(config)
        high = controller.dram.capacity_bytes + 4096
        controller._hmf_flush_interval = 1  # flush a batch per trigger
        now = 0.0
        for _ in range(controller.geometry.sets):
            controller.access(MemoryRequest(addr=high), now)
            now += 50.0
        assert all(controller._chbm_disabled)

    def test_disabled_sets_skip_caching(self):
        controller = make(BumblebeeConfig(
            allocation=AllocationPolicy.DRAM))
        controller._chbm_disabled = [True] * controller.geometry.sets
        touch(controller, 0)
        assert controller.stats.get("chbm_insertions") == 0

    def test_reenable_restores_caching(self):
        controller = make(BumblebeeConfig(
            allocation=AllocationPolicy.DRAM, hmf_cooldown_requests=4))
        high = controller.dram.capacity_bytes + 4096
        now = 0.0
        controller.access(MemoryRequest(addr=high), now)
        assert any(controller._chbm_disabled)
        for i in range(6):
            now += 50.0
            controller.access(MemoryRequest(addr=64 * i), now)
        assert not any(controller._chbm_disabled)


class TestBufferReheat:
    def test_reheated_buffer_switches_back_without_movement(self):
        """A buffered (cHBM, all-valid) page that re-heats flips back to
        mHBM via the most-blocks rule with zero mode-switch bytes."""
        controller = make(BumblebeeConfig(allocation=AllocationPolicy.HBM))
        g = controller.geometry
        page = controller.config.page_bytes
        now = 0.0
        for orig in range(g.hbm_ways):
            _, now = touch(controller, (orig * g.sets) * page,
                           start=now)
        # Force buffering by pressuring with a hot DRAM page.
        hot = (g.hbm_ways + 2) * g.sets * page
        for i in range(60):
            controller.access(MemoryRequest(addr=hot + (i % 32) * 64), now)
            now += 20.0
        full = (1 << controller.config.blocks_per_page) - 1
        buffered = [w for w in range(g.hbm_ways)
                    if controller.ble[0][w].mode is WayMode.CHBM
                    and controller.ble[0][w].valid == full]
        if not buffered:
            pytest.skip("pressure did not buffer in this configuration")
        way = buffered[0]
        owner = controller.ble[0][way].owner
        before = controller.stats.get("mode_switch_bytes")
        # Re-access the buffered page: block hits, then the most-blocks
        # rule flips it back to mHBM fetching nothing (all blocks valid).
        addr = (owner * g.sets) * page
        controller.access(MemoryRequest(addr=addr), now)
        assert controller.ble[0][way].mode is WayMode.MHBM
        assert controller.stats.get("mode_switch_bytes") == before
        controller.check_invariants()


class TestGeometryEdgeCases:
    def test_single_way_config(self):
        controller = make(BumblebeeConfig(hbm_ways=1), hbm_mb=4,
                          dram_mb=40)
        result, _ = touch(controller, 0, times=5)
        controller.check_invariants()

    def test_small_page_config(self):
        config = BumblebeeConfig(page_bytes=16 * 1024, block_bytes=1024)
        controller = make(config)
        touch(controller, 0, times=3)
        touch(controller, 5 * 16 * 1024 + 2048, times=3)
        controller.check_invariants()

    def test_block_equals_page(self):
        config = BumblebeeConfig(page_bytes=64 * 1024,
                                 block_bytes=64 * 1024)
        controller = make(config)
        touch(controller, 0, times=2)
        controller.check_invariants()

    def test_uneven_capacity_rejected(self):
        from repro.core import derive_geometry
        # 70 DRAM pages cannot tile across the 8 sets of a 4MiB stack.
        with pytest.raises(ValueError):
            derive_geometry(BumblebeeConfig(), 4 * MIB, 70 * 64 * 1024)


class TestWriteHandling:
    def test_write_to_chbm_block_sets_dirty(self):
        controller = make(BumblebeeConfig(
            allocation=AllocationPolicy.DRAM))
        touch(controller, 0)                       # fill block 0
        touch(controller, 64, is_write=True, start=100.0)  # write hit
        entry = controller.ble[0][0]
        assert entry.mode is WayMode.CHBM
        assert entry.dirty_count() == 1

    def test_dirty_blocks_written_back_on_eviction(self):
        controller = make(BumblebeeConfig(
            allocation=AllocationPolicy.DRAM))
        touch(controller, 0, is_write=True)
        before = controller.stats.get("writeback_bytes")
        controller._evict_chbm_way(0, 0, 1000.0)
        assert controller.stats.get("writeback_bytes") - before == 2048

    def test_clean_eviction_writes_nothing(self):
        controller = make(BumblebeeConfig(
            allocation=AllocationPolicy.DRAM))
        touch(controller, 0, is_write=False)
        before = controller.stats.get("writeback_bytes")
        controller._evict_chbm_way(0, 0, 1000.0)
        assert controller.stats.get("writeback_bytes") == before

"""Tests for the sanitizer: invariant checker, ddmin shrinking,
reproducer IO, and the differential replay harness."""

from array import array

import pytest

from repro.analysis.differential import (
    DIFFERENTIAL_SCALE,
    SANITIZE_DESIGNS,
    diff_results,
    load_reproducer,
    random_spec,
    run_differential,
    write_reproducer,
)
from repro.analysis.experiments import fitted_devices
from repro.baselines import FIGURE8_DESIGNS, make_controller
from repro.core.ble import WayMode
from repro.sanitize import InvariantChecker, InvariantViolation, shrink_trace
from repro.sim import SimulationDriver
from repro.traces import SyntheticTraceGenerator, derive_seed
from repro.traces.packed import PackedTrace

HBM, DRAM = fitted_devices(DIFFERENTIAL_SCALE)


def _trace(seed: int = 0, requests: int = 2_000) -> PackedTrace:
    spec = random_spec(seed, HBM, DRAM)
    return SyntheticTraceGenerator(
        spec, seed=derive_seed("sanitize-test", seed)
    ).generate_packed(requests)


class TestInvariantChecker:
    def test_clean_run_has_no_violations(self):
        checker = InvariantChecker(epoch_requests=256)
        result = SimulationDriver(checker=checker).run(
            make_controller("Bumblebee", HBM, DRAM), _trace(),
            workload="clean", warmup=400)
        assert checker.ok
        assert checker.violations == []
        # Warm-up requests are checked too: the count covers the whole
        # trace even though the result window is post-reset.
        assert checker.requests_checked == 2_000
        assert result.requests == 1_600
        assert checker.epochs_checked > 1

    def test_checked_loop_matches_fast_path_exactly(self):
        trace = _trace(1)
        fast = SimulationDriver().run(
            make_controller("Bumblebee", HBM, DRAM), trace,
            workload="w", warmup=400)
        checked = SimulationDriver(checker=InvariantChecker()).run(
            make_controller("Bumblebee", HBM, DRAM), trace,
            workload="w", warmup=400)
        assert diff_results(fast, checked) == []

    def test_checker_uninstalls_instrumentation(self):
        checker = InvariantChecker()
        controller = make_controller("Bumblebee", HBM, DRAM)
        SimulationDriver(checker=checker).run(
            controller, _trace(), workload="w", warmup=100)
        # The access wrapper is an instance attribute; after the run the
        # class method must be back (no instance override left behind).
        assert "access" not in vars(controller.dram)
        assert "access" not in vars(controller.hbm)
        assert all(type(e).__name__ == "BlockLocationEntry"
                   for ble_set in controller.ble
                   for e in ble_set._entries)

    def test_detects_stats_corruption(self):
        controller = make_controller("Bumblebee", HBM, DRAM)
        original = controller.access
        state = {"count": 0}

        def corrupting(request, now_ns):
            state["count"] += 1
            result = original(request, now_ns)
            if state["count"] == 700:
                controller.stats.bump("demand_reads", 7)
            return result

        controller.access = corrupting
        checker = InvariantChecker(epoch_requests=128)
        SimulationDriver(checker=checker).run(
            controller, _trace(), workload="corrupt", warmup=400)
        assert not checker.ok
        assert any("demand accesses" in v for v in checker.violations)

    def test_detects_hit_flag_divergence(self):
        import dataclasses
        controller = make_controller("Bumblebee", HBM, DRAM)
        original = controller.access
        state = {"count": 0}

        def lying(request, now_ns):
            state["count"] += 1
            result = original(request, now_ns)
            if state["count"] == 500:
                result = dataclasses.replace(
                    result, hbm_hit=not result.hbm_hit)
            return result

        controller.access = lying
        checker = InvariantChecker(epoch_requests=128)
        SimulationDriver(checker=checker).run(
            controller, _trace(), workload="lying", warmup=100)
        assert not checker.ok
        assert any("serviced by" in v for v in checker.violations)

    def test_detects_illegal_ble_transition(self):
        controller = make_controller("Bumblebee", HBM, DRAM)
        checker = InvariantChecker()
        checker.on_run_start(controller, "ble")
        entry = controller.ble[0]._entries[0]
        assert entry.mode is WayMode.FREE and entry.owner == -1
        # FREE -> MHBM with no owner breaks the state machine.
        entry.mode = WayMode.MHBM
        assert not checker.ok
        assert any("BLE transition" in v for v in checker.violations)
        checker._uninstall(controller)

    def test_legal_ble_transition_passes(self):
        controller = make_controller("Bumblebee", HBM, DRAM)
        checker = InvariantChecker()
        checker.on_run_start(controller, "ble")
        entry = controller.ble[0]._entries[0]
        entry.owner = 3
        entry.mode = WayMode.CHBM
        assert checker.ok
        checker._uninstall(controller)

    def test_strict_mode_raises(self):
        checker = InvariantChecker(strict=True)
        with pytest.raises(InvariantViolation):
            checker.record("boom")

    def test_epoch_requests_must_be_positive(self):
        with pytest.raises(ValueError):
            InvariantChecker(epoch_requests=0)

    @pytest.mark.parametrize("design",
                             [d for d in SANITIZE_DESIGNS
                              if d != "Bumblebee"])
    def test_clean_on_every_design(self, design):
        checker = InvariantChecker(epoch_requests=256)
        SimulationDriver(checker=checker).run(
            make_controller(design, HBM, DRAM), _trace(2, 1_200),
            workload="sweep", warmup=200)
        assert checker.violations == []


class TestShrink:
    def test_shrinks_to_single_culprit(self):
        values = list(range(100, 180))
        trace = PackedTrace(array("Q", values))
        minimal = shrink_trace(trace, lambda t: 137 in t.data)
        assert list(minimal.data) == [137]

    def test_returns_original_when_not_failing(self):
        trace = PackedTrace(array("Q", [1, 2, 3]))
        assert shrink_trace(trace, lambda t: False) is trace

    def test_budget_caps_predicate_calls(self):
        calls = {"n": 0}

        def predicate(t):
            calls["n"] += 1
            return 7 in t.data

        trace = PackedTrace(array("Q", list(range(200))))
        minimal = shrink_trace(trace, predicate, max_tests=10)
        assert calls["n"] <= 11  # initial confirmation + budget
        assert 7 in minimal.data  # still a valid reproducer

    def test_pair_dependency_kept(self):
        # Failure requires both elements: ddmin must keep the pair.
        trace = PackedTrace(array("Q", list(range(64))))
        minimal = shrink_trace(
            trace, lambda t: 5 in t.data and 50 in t.data)
        assert sorted(minimal.data) == [5, 50]


class TestReproducerIO:
    def test_roundtrip(self, tmp_path):
        trace = _trace(3, 64)
        path = tmp_path / "case.repro.trace"
        write_reproducer(path, trace, {"design": "Bumblebee", "seed": 3})
        loaded, metadata = load_reproducer(path)
        assert list(loaded.data) == list(trace.data)
        assert metadata["design"] == "Bumblebee"
        assert metadata["seed"] == 3

    def test_corruption_detected(self, tmp_path):
        trace = _trace(3, 64)
        path = tmp_path / "case.repro.trace"
        write_reproducer(path, trace, {})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="digest"):
            load_reproducer(path)


class TestDifferential:
    def test_small_sweep_is_clean(self, tmp_path):
        report = run_differential(
            designs=["Banshee", "Bumblebee"], seeds=1, requests=1_500,
            warmup=300, out_dir=tmp_path)
        assert report.passed
        assert report.failures == []
        assert report.epochs_checked > 0
        assert report.requests_checked == 2 * 1_500
        assert "all checks passed" in report.render()
        assert not any(tmp_path.iterdir())  # no reproducers written

    def test_diff_results_flags_divergence(self):
        driver = SimulationDriver()
        a = driver.run(make_controller("Banshee", HBM, DRAM), _trace(0),
                       workload="w", warmup=100)
        b = driver.run(make_controller("Banshee", HBM, DRAM), _trace(1),
                       workload="w", warmup=100)
        diffs = diff_results(a, b)
        assert diffs  # different traces cannot agree on everything
        # The name field is ignored by default (same design both sides).
        assert all(d.split(":")[0] != "controller" for d in diffs)

    def test_random_specs_are_deterministic_and_distinct(self):
        assert random_spec(0, HBM, DRAM) == random_spec(0, HBM, DRAM)
        assert random_spec(0, HBM, DRAM) != random_spec(1, HBM, DRAM)

    def test_design_set_covers_figure8(self):
        assert set(FIGURE8_DESIGNS) <= set(SANITIZE_DESIGNS)

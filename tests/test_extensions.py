"""Tests for features beyond the paper: prefetch, full-stack, validation."""

import pytest

from repro.analysis.metrics import GroupSummary
from repro.analysis.validation import (
    ShapeCheck,
    check_figure7,
    check_figure8,
    check_metadata,
    check_overfetch,
    render_report,
)
from repro.core import BumblebeeConfig, BumblebeeController
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import (
    MemoryRequest,
    RawAccess,
    SimulationDriver,
    raw_access_stream,
    run_full_stack,
)
from repro.traces import SyntheticSpec, SyntheticTraceGenerator

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)


class TestPrefetch:
    def make(self, blocks):
        from repro.core.config import AllocationPolicy
        return BumblebeeController(
            HBM, DRAM, BumblebeeConfig(prefetch_blocks=blocks,
                                       allocation=AllocationPolicy.DRAM))

    def test_disabled_by_default(self):
        assert BumblebeeConfig().prefetch_blocks == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BumblebeeConfig(prefetch_blocks=-1)

    def test_prefetches_next_blocks(self):
        controller = self.make(2)
        controller.access(MemoryRequest(addr=0), 0.0)
        assert controller.stats.get("prefetched_blocks") == 2
        # Blocks 1 and 2 are now valid: demand to them hits.
        result = controller.access(MemoryRequest(addr=2048), 100.0)
        assert result.hbm_hit
        controller.check_invariants()

    def test_prefetch_stops_at_page_boundary(self):
        controller = self.make(4)
        last_block_addr = (controller.config.blocks_per_page - 1) * 2048
        controller.access(MemoryRequest(addr=last_block_addr), 0.0)
        assert controller.stats.get("prefetched_blocks") == 0

    def test_prefetched_bytes_counted_as_fetched(self):
        controller = self.make(2)
        controller.access(MemoryRequest(addr=0), 0.0)
        assert controller.stats.get("fetched_bytes") == 3 * 2048

    def test_prefetch_improves_sequential_hit_rate(self):
        spec = SyntheticSpec("seq", 16 * MIB, spatial=0.95, temporal=0.1,
                             mpki=16.0)
        trace = SyntheticTraceGenerator(spec, seed=2).generate(12000)
        plain = SimulationDriver().run(self.make(0), trace, workload="s")
        prefetched = SimulationDriver().run(self.make(2), trace,
                                            workload="s")
        assert prefetched.hbm_hit_rate >= plain.hbm_hit_rate


class TestFullStack:
    def test_hierarchy_filters_reuse(self):
        spec = SyntheticSpec("fs", 8 * MIB, 0.7, 0.8, mpki=16.0,
                             hot_fraction=0.2)
        controller = BumblebeeController(HBM, DRAM)
        result, hierarchy = run_full_stack(
            controller, raw_access_stream(spec, 20000))
        # The SRAM stack absorbs a meaningful share of raw accesses.
        assert result.requests < 20000
        assert hierarchy.llc.accesses > 0

    def test_writebacks_reach_memory(self):
        from repro.cache import CacheHierarchy, HierarchyConfig
        spec = SyntheticSpec("wb", 8 * MIB, 0.5, 0.5, mpki=16.0,
                             write_fraction=0.9)
        controller = BumblebeeController(HBM, DRAM)
        # A small hierarchy so dirty LLC evictions surface quickly.
        hierarchy = CacheHierarchy(HierarchyConfig(
            l1_bytes=16 * 1024, l2_bytes=64 * 1024,
            llc_bytes=256 * 1024))
        result, _ = run_full_stack(controller,
                                   raw_access_stream(spec, 30000),
                                   hierarchy=hierarchy)
        assert result.controller_stats.get("demand_writes", 0) > 0

    def test_raw_access_stream_length(self):
        spec = SyntheticSpec("r", 1 * MIB, 0.5, 0.5, 10.0)
        assert len(list(raw_access_stream(spec, 123))) == 123

    def test_raw_access_dataclass(self):
        access = RawAccess(addr=64, is_write=True, icount=5)
        assert access.addr == 64 and access.is_write


def summary(design, group, ipc, hbm=1.0, dram=1.0, energy=1.0):
    return GroupSummary(design=design, group=group, norm_ipc=ipc,
                        norm_hbm_traffic=hbm, norm_dram_traffic=dram,
                        norm_energy=energy)


def fig8_results(bee_ipc=2.0):
    designs = {
        "Bumblebee": bee_ipc, "Chameleon": 1.8, "Banshee": 1.5,
        "Hybrid2": 1.4, "AlloyCache": 1.2, "UnisonCache": 1.05,
    }
    out = {}
    for design, ipc in designs.items():
        out[design] = {
            "high": summary(design, "high", ipc * 1.2),
            "low": summary(design, "low", 1.02),
            "all": summary(design, "all", ipc,
                           hbm=2.0 if design != "Hybrid2" else 2.2,
                           dram=0.9, energy=1.0 if design == "Bumblebee"
                           else 1.5),
        }
    return out


class TestValidation:
    def test_figure8_checks_pass_on_paper_shape(self):
        checks = check_figure8(fig8_results())
        assert all(c.passed for c in checks)

    def test_figure8_detects_bumblebee_losing(self):
        checks = check_figure8(fig8_results(bee_ipc=1.0))
        assert not all(c.passed for c in checks)

    def test_figure7_checks(self):
        results = {"C-Only": 1.3, "M-Only": 1.6, "Meta-H": 1.2,
                   "Bumblebee": 2.0}
        assert all(c.passed for c in check_figure7(results))

    def test_figure7_detects_inversion(self):
        results = {"C-Only": 2.5, "M-Only": 1.6, "Meta-H": 1.2,
                   "Bumblebee": 2.0}
        checks = check_figure7(results)
        assert any(not c.passed for c in checks)

    def test_overfetch_check(self):
        assert check_overfetch({"Bumblebee": 0.13,
                                "Hybrid2": 0.14})[0].passed
        assert not check_overfetch({"Bumblebee": 0.5,
                                    "Hybrid2": 0.14})[0].passed

    def test_metadata_check(self):
        from repro.core import BumblebeeConfig, derive_geometry
        from repro.core.metadata import metadata_sizes
        config = BumblebeeConfig()
        geometry = derive_geometry(config, 1 << 30, 10 << 30)
        report = {
            "bumblebee": metadata_sizes(config, geometry),
            "bumblebee_fits_sram": True,
            "hybrid2_bytes": 24 << 20,
            "alloy_bytes": 110 << 20,
        }
        assert all(c.passed for c in check_metadata(report))

    def test_render_report_counts(self):
        checks = [ShapeCheck("a", "b", True, "c"),
                  ShapeCheck("d", "e", False, "f")]
        text = render_report(checks)
        assert "1/2" in text
        assert "[MISS]" in text

    def test_figure8_bumblebee_free_campaign_skips(self):
        # Regression: a campaign over a subset of designs crashed the
        # shape checks with KeyError; absent designs now skip-and-report.
        results = fig8_results()
        del results["Bumblebee"]
        checks = check_figure8(results)
        skipped = [c for c in checks if c.skipped]
        assert skipped
        assert all("Bumblebee" in c.measured for c in skipped)
        # Claims that never reference Bumblebee still evaluate.
        evaluated = [c for c in checks if not c.skipped]
        assert evaluated
        assert all(not c.passed for c in skipped)  # skips never "pass"

    def test_figure8_single_design_never_crashes(self):
        results = {"Banshee": fig8_results()["Banshee"]}
        checks = check_figure8(results)
        assert checks
        assert all(c.skipped for c in checks)

    def test_figure7_subset_skips(self):
        checks = check_figure7({"Bumblebee": 2.0, "M-Only": 1.6})
        assert any(c.skipped for c in checks)
        assert any(not c.skipped for c in checks)

    def test_overfetch_subset_skips(self):
        checks = check_overfetch({"Bumblebee": 0.13})
        assert len(checks) == 1
        assert checks[0].skipped
        assert "Hybrid2" in checks[0].measured

    def test_render_report_counts_skips_separately(self):
        checks = [ShapeCheck("a", "b", True, "c"),
                  ShapeCheck.skip("d", "e", ["Bumblebee"])]
        text = render_report(checks)
        assert "1/1" in text
        assert "[SKIP]" in text
        assert "1 skipped" in text

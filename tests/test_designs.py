"""Tests for the design registry and declarative DesignSpec layer."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Campaign,
    ExperimentConfig,
    ExperimentHarness,
    ResultCache,
    SANITIZE_DESIGNS,
)
from repro.baselines import (
    FIGURE7_VARIANTS,
    FIGURE8_DESIGNS,
    AlloyCacheController,
    BansheeController,
    ChameleonController,
    Hybrid2Controller,
    IdealHBMController,
    MemPodController,
    NoHBMController,
    UnisonCacheController,
    c_only,
    fixed_chbm,
    m_only,
    make_controller,
)
from repro.cli import main
from repro.core.config import AllocationPolicy, BumblebeeConfig
from repro.core.hmmc import BumblebeeController
from repro.designs import DesignSpec, parse_grid, parse_grid_value, registry
from repro.analysis.differential import diff_results
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import SimulationDriver
from repro.traces import SyntheticSpec, SyntheticTraceGenerator

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)

#: Every name the pre-registry if/elif factory understood.
LEGACY_NAMES = sorted(set(FIGURE8_DESIGNS) | set(FIGURE7_VARIANTS)
                      | {"No-HBM", "Ideal", "MemPod"})


def legacy_make_controller(name, hbm_config, dram_config,
                           sram_bytes=512 * 1024):
    """Verbatim replica of the pre-registry if/elif factory.

    The registry refactor must be behaviour-preserving: every name this
    factory understood has to produce a bit-identical simulation through
    ``registry.build``.  Keep this replica frozen.
    """
    if name == "No-HBM":
        return NoHBMController(dram_config)
    if name == "Ideal":
        return IdealHBMController(hbm_config, dram_config)
    if name == "MemPod":
        return MemPodController(hbm_config, dram_config)
    if name == "Bumblebee":
        return BumblebeeController(hbm_config, dram_config)
    if name == "Banshee":
        return BansheeController(hbm_config, dram_config)
    if name == "AlloyCache":
        return AlloyCacheController(hbm_config, dram_config)
    if name == "UnisonCache":
        return UnisonCacheController(hbm_config, dram_config)
    if name == "Chameleon":
        return ChameleonController(hbm_config, dram_config,
                                   sram_bytes=sram_bytes)
    if name == "Hybrid2":
        return Hybrid2Controller(hbm_config, dram_config,
                                 sram_bytes=sram_bytes)
    if name == "C-Only":
        return c_only(hbm_config, dram_config)
    if name == "M-Only":
        return m_only(hbm_config, dram_config)
    if name == "25%-C":
        return fixed_chbm(hbm_config, dram_config, 0.25)
    if name == "50%-C":
        return fixed_chbm(hbm_config, dram_config, 0.50)
    if name == "No-Multi":
        return BumblebeeController(
            hbm_config, dram_config,
            BumblebeeConfig(multiplexed=False), name="No-Multi")
    if name == "Meta-H":
        return BumblebeeController(
            hbm_config, dram_config,
            BumblebeeConfig(metadata_in_hbm=True), name="Meta-H")
    if name == "Alloc-D":
        return BumblebeeController(
            hbm_config, dram_config,
            BumblebeeConfig(allocation=AllocationPolicy.DRAM),
            name="Alloc-D")
    if name == "Alloc-H":
        return BumblebeeController(
            hbm_config, dram_config,
            BumblebeeConfig(allocation=AllocationPolicy.HBM), name="Alloc-H")
    if name == "No-HMF":
        return BumblebeeController(
            hbm_config, dram_config,
            BumblebeeConfig(hmf_enabled=False), name="No-HMF")
    raise ValueError(f"unknown design {name!r}")


def run_trace(controller, n=1200, seed=11):
    spec = SyntheticSpec("t", 16 * MIB, 0.5, 0.7, mpki=16.0,
                         hot_fraction=0.1)
    trace = SyntheticTraceGenerator(spec, seed=seed).generate(n)
    return SimulationDriver().run(controller, trace, workload="t")


# ---- DesignSpec ------------------------------------------------------------


class TestDesignSpec:
    def test_derived_name_and_pinned_hash(self):
        spec = DesignSpec("Bumblebee", {"chbm_ratio": 0.25,
                                        "allocation": "dram"})
        assert spec.name == "Bumblebee[allocation=dram,chbm_ratio=0.25]"
        # The hash is a persistence contract (result-cache keys, campaign
        # resume keys): a change here invalidates every stored record.
        assert spec.spec_hash == ("bc76f7390125e9797f8a723d205dcc4c"
                                  "8988577e575d7a2138faf64049b46444")

    def test_param_order_insensitive(self):
        a = DesignSpec("Bumblebee", {"chbm_ratio": 0.5, "hbm_ways": 4})
        b = DesignSpec("Bumblebee", {"hbm_ways": 4, "chbm_ratio": 0.5})
        assert a == b
        assert hash(a) == hash(b)
        assert a.spec_hash == b.spec_hash
        assert a.to_json() == b.to_json()

    def test_rejects_duplicate_and_non_scalar_params(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpec("Bumblebee", (("a", 1), ("a", 2)))
        with pytest.raises(TypeError, match="JSON"):
            DesignSpec("Bumblebee", {"a": [1, 2]})
        with pytest.raises(ValueError, match="base"):
            DesignSpec("")

    def test_with_params_rederives_name(self):
        spec = DesignSpec("Bumblebee", {"chbm_ratio": 0.5})
        widened = spec.with_params(hbm_ways=4)
        assert widened.get("chbm_ratio") == 0.5
        assert widened.get("hbm_ways") == 4
        assert "hbm_ways=4" in widened.name

    @settings(max_examples=60, deadline=None)
    @given(st.dictionaries(
        st.text(st.characters(codec="ascii", exclude_characters="="),
                min_size=1, max_size=8),
        st.one_of(st.booleans(), st.integers(-2**31, 2**31), st.none(),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=12)),
        max_size=6))
    def test_json_round_trip_and_hash_stability(self, params):
        spec = DesignSpec("Bumblebee", params)
        again = DesignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.name == spec.name
        assert again.spec_hash == spec.spec_hash
        # Re-serialising the round-tripped spec is a fixed point.
        assert again.to_json() == spec.to_json()
        # A shuffled construction order changes nothing.
        reordered = DesignSpec("Bumblebee",
                               dict(reversed(list(params.items()))))
        assert reordered.spec_hash == spec.spec_hash

    def test_hash_stable_across_processes(self):
        # sha256 of canonical JSON contains no per-process state (no
        # PYTHONHASHSEED dependence); recomputing from parsed JSON in a
        # fresh object must land on the identical digest.
        spec = DesignSpec("Chameleon", {"sram_bytes": 1024})
        payload = json.loads(spec.to_json())
        assert DesignSpec.from_dict(payload).spec_hash == spec.spec_hash


class TestGridParsing:
    def test_value_coercion(self):
        assert parse_grid_value("true") is True
        assert parse_grid_value("none") is None
        assert parse_grid_value("8") == 8
        assert parse_grid_value("0.25") == 0.25
        assert parse_grid_value("dram") == "dram"

    def test_parse_grid(self):
        grid = parse_grid(["chbm_ratio=0,0.5,1.0", "allocation=dram,hbm"])
        assert list(grid) == ["chbm_ratio", "allocation"]
        assert grid["chbm_ratio"] == [0, 0.5, 1.0]
        assert grid["allocation"] == ["dram", "hbm"]

    def test_parse_grid_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_grid(["chbm_ratio"])
        with pytest.raises(ValueError):
            parse_grid(["=1,2"])
        with pytest.raises(ValueError):
            parse_grid(["a=1", "a=2"])
        with pytest.raises(ValueError):
            parse_grid([])


# ---- registry --------------------------------------------------------------


class TestRegistry:
    def test_paper_name_lists_derive_from_registry(self):
        assert FIGURE8_DESIGNS == ["Banshee", "AlloyCache", "UnisonCache",
                                   "Chameleon", "Hybrid2", "Bumblebee"]
        assert FIGURE7_VARIANTS == ["C-Only", "M-Only", "25%-C", "50%-C",
                                    "No-Multi", "Meta-H", "Alloc-D",
                                    "Alloc-H", "No-HMF", "Bumblebee"]
        assert set(LEGACY_NAMES) <= set(registry.names())
        assert set(registry.names()) == set(SANITIZE_DESIGNS)

    @pytest.mark.parametrize("name", sorted(registry.names()))
    def test_every_registered_design_builds_and_replays(self, name):
        controller = registry.build(name, HBM, DRAM, sram_bytes=16 * 1024)
        assert controller.name == name
        result = run_trace(controller, n=800)
        assert result.requests == 800
        assert result.ipc > 0

    def test_unknown_design_lists_known_names(self):
        with pytest.raises(ValueError) as excinfo:
            registry.build("FancyCache", HBM, DRAM)
        message = str(excinfo.value)
        for name in ("Bumblebee", "Banshee", "Chameleon", "No-HBM"):
            assert name in message
        with pytest.raises(ValueError, match="Bumblebee"):
            make_controller("FancyCache", HBM, DRAM)

    def test_undeclared_param_rejected_with_supported_list(self):
        spec = DesignSpec("Banshee", {"chbm_ratio": 0.5})
        with pytest.raises(ValueError) as excinfo:
            registry.build(spec, HBM, DRAM)
        assert "chbm_ratio" in str(excinfo.value)

    def test_sram_bytes_reaches_declaring_designs(self):
        for name in ("Chameleon", "Hybrid2"):
            small = registry.build(name, HBM, DRAM, sram_bytes=1024)
            big = registry.build(name, HBM, DRAM, sram_bytes=16 * MIB)
            assert not small.metadata_in_sram()
            assert big.metadata_in_sram()

    def test_sram_bytes_spec_override_beats_harness_default(self):
        spec = DesignSpec("Chameleon", {"sram_bytes": 16 * MIB})
        controller = registry.build(spec, HBM, DRAM, sram_bytes=1024)
        assert controller.metadata_in_sram()

    def test_sram_bytes_explicitly_unsupported_elsewhere(self):
        # The harness-level default is ignored (historical factory
        # behaviour) ...
        registry.build("Banshee", HBM, DRAM, sram_bytes=1024)
        # ... but a spec-level override on a design that declares no
        # such parameter is an error, not a silent no-op.
        spec = DesignSpec("Banshee", {"sram_bytes": 1024})
        with pytest.raises(ValueError, match="sram_bytes"):
            registry.build(spec, HBM, DRAM)

    def test_chbm_ratio_conflicts_with_fixed_ways(self):
        spec = DesignSpec("Bumblebee", {"chbm_ratio": 0.5,
                                        "fixed_chbm_ways": 2})
        with pytest.raises(ValueError):
            registry.build(spec, HBM, DRAM)
        with pytest.raises(ValueError):
            registry.build(DesignSpec("Bumblebee", {"chbm_ratio": 1.5}),
                           HBM, DRAM)

    def test_expand_grid_cross_product(self):
        grid = {"chbm_ratio": [0.0, 0.25, 0.5, 0.75, 1.0],
                "allocation": ["dram", "hbm", "adaptive"],
                "hmf_enabled": [True, False]}
        specs = registry.expand_grid("Bumblebee", grid)
        assert len(specs) == 30
        names = [spec.name for spec in specs]
        hashes = [spec.spec_hash for spec in specs]
        assert len(set(names)) == 30
        assert len(set(hashes)) == 30
        # Deterministic order: grid key order, last key fastest.
        assert specs[0].get("chbm_ratio") == 0.0
        assert specs[0].get("hmf_enabled") is True
        assert specs[1].get("hmf_enabled") is False
        assert specs[1].get("chbm_ratio") == 0.0
        assert specs[-1] == DesignSpec(
            "Bumblebee", {"chbm_ratio": 1.0, "allocation": "adaptive",
                          "hmf_enabled": False})

    def test_expand_grid_rejects_bad_axes(self):
        with pytest.raises(ValueError, match="supported"):
            registry.expand_grid("Banshee", {"chbm_ratio": [0.5]})
        with pytest.raises(ValueError, match="no values"):
            registry.expand_grid("Bumblebee", {"chbm_ratio": []})
        with pytest.raises(ValueError, match="unknown base"):
            registry.expand_grid("FancyCache", {"chbm_ratio": [0.5]})


# ---- behaviour preservation ------------------------------------------------


class TestLegacyBitIdentity:
    @pytest.mark.parametrize("name", LEGACY_NAMES)
    def test_registry_matches_legacy_factory(self, name):
        """Every pre-refactor name simulates bit-identically through the
        registry (the refactor's behaviour-preservation contract)."""
        legacy = run_trace(legacy_make_controller(name, HBM, DRAM,
                                                  sram_bytes=16 * 1024))
        routed = run_trace(make_controller(name, HBM, DRAM,
                                           sram_bytes=16 * 1024))
        assert diff_results(legacy, routed, ignore=()) == []


# ---- cache keying ----------------------------------------------------------


FAST = dict(requests=900, warmup=300, workloads=("leela",))


class TestSpecCacheKeys:
    def test_specs_differing_in_one_param_miss_each_other(self, tmp_path):
        """Two specs sharing a base but differing in one parameter must
        never alias in the persistent result cache (the latent name-only
        keying bug this layer fixes)."""
        a = DesignSpec("Bumblebee", {"chbm_ratio": 0.0})
        b = DesignSpec("Bumblebee", {"chbm_ratio": 1.0})
        cache = ResultCache(tmp_path / "cache")
        warm = ExperimentHarness(ExperimentConfig(**FAST), cache=cache)
        first = warm.run_design(a, "leela")

        fresh = ExperimentHarness(ExperimentConfig(**FAST),
                                  cache=ResultCache(tmp_path / "cache"))
        assert fresh.cached_comparison(a, "leela") is not None
        assert fresh.cached_comparison(b, "leela") is None
        second = fresh.run_design(b, "leela")
        assert first.norm_ipc != second.norm_ipc

    def test_name_and_eponymous_spec_share_a_key(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        harness = ExperimentHarness(ExperimentConfig(**FAST), cache=cache)
        harness.run_design("Bumblebee", "leela")
        fresh = ExperimentHarness(ExperimentConfig(**FAST),
                                  cache=ResultCache(tmp_path / "cache"))
        assert fresh.cached_comparison(
            registry.spec("Bumblebee"), "leela") is not None

    def test_campaign_resumes_spec_cells(self, tmp_path):
        spec = DesignSpec("Bumblebee", {"chbm_ratio": 0.5})
        harness = ExperimentHarness(ExperimentConfig(**FAST))
        campaign = Campaign(harness, tmp_path / "campaign.jsonl")
        assert campaign.run([spec, "Banshee"], ["leela"]) == 2

        resumed = Campaign(ExperimentHarness(ExperimentConfig(**FAST)),
                           tmp_path / "campaign.jsonl")
        assert resumed.has(spec, "leela")
        assert resumed.has("Banshee", "leela")
        # The sibling sweep point is still missing: spec cells key on
        # the spec hash, not the shared base name.
        assert not resumed.has(DesignSpec("Bumblebee",
                                          {"chbm_ratio": 0.25}), "leela")
        assert resumed.run([spec, "Banshee"], ["leela"]) == 0
        assert resumed.matrix()[spec.name]["leela"] == pytest.approx(
            campaign.matrix()[spec.name]["leela"])


# ---- CLI -------------------------------------------------------------------


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestDesignsCli:
    def test_designs_list(self, capsys):
        code, out = run_cli(capsys, "designs", "list")
        assert code == 0
        for name in registry.names():
            assert name in out

    def test_designs_show(self, capsys):
        code, out = run_cli(capsys, "designs", "show", "25%-C")
        assert code == 0
        assert "chbm_ratio" in out
        assert registry.spec("25%-C").spec_hash in out

    def test_designs_show_unknown(self, capsys):
        code = main(["designs", "show", "FancyCache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "Bumblebee" in err

    def test_sweep_grid_and_resume(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.jsonl"
        argv = ("sweep", "--base", "Bumblebee",
                "--grid", "chbm_ratio=0,1.0",
                "--grid", "allocation=dram,adaptive",
                "--workloads", "leela", "--out", str(out_file),
                "--requests", "900", "--warmup", "300")
        code, out = run_cli(capsys, *argv)
        assert code == 0
        assert "4 specs" in out
        assert "4 cells complete (4 new)" in out

        code, out = run_cli(capsys, *argv, "--resume")
        assert code == 0
        assert "4 cells complete (0 new)" in out

    def test_sweep_rejects_bad_grid(self, capsys):
        code = main(["sweep", "--grid", "warp_factor=9",
                     "--workloads", "leela"])
        err = capsys.readouterr().err
        assert code == 2
        assert "warp_factor" in err

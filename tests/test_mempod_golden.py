"""MemPod unit tests plus golden-value regression locks.

The golden tests pin exact deterministic outputs of a small fixed
configuration.  They exist to catch *unintended* behavioural drift: if a
change legitimately alters policy behaviour, update the golden values in
the same commit and say why.
"""

import pytest

from repro.baselines import MemPodController, make_controller
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import CpuModel, MemoryRequest, SimulationDriver
from repro.traces import SyntheticSpec, SyntheticTraceGenerator

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)


class TestMemPod:
    def test_mea_promotes_majority_page(self):
        controller = MemPodController(HBM, DRAM)
        addr = 0  # pod 0, page 0
        for i in range(controller.EPOCH_ACCESSES + 1):
            controller.access(MemoryRequest(addr=addr), i * 10.0)
        assert controller.stats.get("pod_migrations") >= 1
        result = controller.access(MemoryRequest(addr=addr), 1e6)
        assert result.hbm_hit

    def test_epoch_cadence(self):
        controller = MemPodController(HBM, DRAM)
        for i in range(controller.EPOCH_ACCESSES * 3):
            controller.access(MemoryRequest(addr=0), i * 10.0)
        assert controller.stats.get("epochs") == 3

    def test_pods_are_independent(self):
        controller = MemPodController(HBM, DRAM)
        # Hammer pod 0 only; pod 1 must see no epochs.
        for i in range(controller.EPOCH_ACCESSES):
            controller.access(MemoryRequest(addr=0), i * 10.0)
        assert controller._pods[1].accesses == 0

    def test_eviction_when_pod_full(self):
        controller = MemPodController(HBM, DRAM)
        controller._slots_per_pod = 2
        pod = controller._pods[0]
        pod.free_slots = [0, 1]
        stride = 2048 * 8  # stay in pod 0
        now = 0.0
        for page_index in range(3):
            for i in range(controller.EPOCH_ACCESSES):
                controller.access(
                    MemoryRequest(addr=page_index * stride), now)
                now += 10.0
        assert controller.stats.get("pod_evictions") >= 1
        assert len(pod.resident) <= 2

    def test_metadata_fits_sram(self):
        controller = MemPodController(HBM, DRAM)
        assert controller.metadata_in_sram()

    def test_mea_bounded(self):
        controller = MemPodController(HBM, DRAM)
        import random
        rng = random.Random(0)
        for i in range(500):
            controller.access(
                MemoryRequest(addr=rng.randrange(64 * MIB) // 64 * 64),
                i * 10.0)
        for pod in controller._pods:
            assert len(pod.mea) <= controller.MEA_ENTRIES


def golden_trace():
    spec = SyntheticSpec("golden", 4 * MIB, spatial=0.6, temporal=0.7,
                         mpki=16.0, hot_fraction=0.2)
    return SyntheticTraceGenerator(spec, seed=42).generate(4000)


class TestGoldenValues:
    """Deterministic regression locks on a tiny fixed configuration."""

    def test_trace_is_bit_stable(self):
        trace = golden_trace()
        # First/last records pin the generator's stream.
        assert (trace[0].addr, trace[0].is_write) == (1862912, False)
        assert trace[-1].addr == 626816
        assert sum(r.addr for r in trace) == 7685797632

    def test_bumblebee_golden_counters(self):
        controller = make_controller("Bumblebee", HBM, DRAM)
        result = SimulationDriver(CpuModel()).run(
            controller, golden_trace(), workload="golden")
        stats = result.controller_stats
        assert result.requests == 4000
        assert stats["demand_reads"] + stats["demand_writes"] == 4000
        # Behavioural lock: hit count and movement volume.
        assert result.hbm_hits == stats["hbm_demand_hits"]
        golden = {
            "hbm_hits": result.hbm_hits,
            "fetch_bytes": stats.get("fetched_bytes", 0),
        }
        assert golden["hbm_hits"] == 3832
        assert golden["fetch_bytes"] == 733184

    def test_no_hbm_golden_latency(self):
        controller = make_controller("No-HBM", HBM, DRAM)
        result = SimulationDriver(CpuModel()).run(
            controller, golden_trace(), workload="golden")
        assert result.avg_latency_ns == pytest.approx(42.68, abs=0.5)

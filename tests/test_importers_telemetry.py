"""Tests for trace importers and controller telemetry."""

import pytest

from repro.core import (
    BumblebeeController,
    TelemetryRecorder,
    snapshot,
)
from repro.mem import ddr4_3200_config, hbm2_config
from repro.traces import (
    import_trace,
    read_csv_trace,
    read_gem5_trace,
    read_pin_trace,
    workload_trace,
)

MIB = 1 << 20


class TestCsvImporter:
    def test_header_and_comments_skipped(self):
        lines = ["addr,rw,icount", "# note", "0x40,R,5", "128,W,7"]
        requests = list(read_csv_trace(lines))
        assert len(requests) == 2
        assert requests[0].addr == 0x40 and not requests[0].is_write
        assert requests[1].addr == 128 and requests[1].is_write

    def test_default_icount_applied(self):
        requests = list(read_csv_trace(["0x40,R"], default_icount=33))
        assert requests[0].icount == 33

    def test_rw_variants(self):
        lines = ["0,read", "64,WRITE", "128,0", "192,1"]
        flags = [r.is_write for r in read_csv_trace(lines)]
        assert flags == [False, True, False, True]

    def test_malformed_rw_raises_with_line(self):
        with pytest.raises(ValueError, match="line 1"):
            list(read_csv_trace(["0x40,maybe"]))

    def test_malformed_addr_raises(self):
        with pytest.raises(ValueError, match="bad address"):
            list(read_csv_trace(["zzz,R"]))

    def test_short_row_raises(self):
        with pytest.raises(ValueError, match="expected at least"):
            list(read_csv_trace(["12345"]))


class TestGem5Importer:
    def test_keeps_only_memory_packets(self):
        lines = [
            "100: mem_ctrl: ReadReq @0x1000 size 64",
            "105: mem_ctrl: PrefetchReq @0x2000 size 64",
            "110: mem_ctrl: WriteReq @0x3000 size 64",
            "",
            "# comment",
        ]
        requests = list(read_gem5_trace(lines))
        assert [r.addr for r in requests] == [0x1000, 0x3000]
        assert [r.is_write for r in requests] == [False, True]

    def test_comma_separated_variant(self):
        requests = list(read_gem5_trace(["1000,ReadReq,0x400"]))
        assert requests[0].addr == 0x400

    def test_writeback_counts_as_write(self):
        requests = list(read_gem5_trace(
            ["9: ctrl: WritebackDirty @0x40 size 64"]))
        assert requests[0].is_write


class TestPinImporter:
    def test_basic_lines(self):
        requests = list(read_pin_trace(["0x400: R 0x1000",
                                        "0x404: W 0x1040"]))
        assert requests[0].addr == 0x1000
        assert requests[1].is_write

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            list(read_pin_trace(["nonsense"]))


class TestImportTrace:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("addr,rw\n0x40,R\n0x80,W\n")
        requests = list(import_trace(path, fmt="csv"))
        assert len(requests) == 2

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_text("")
        with pytest.raises(ValueError, match="unknown trace format"):
            list(import_trace(path, fmt="vtune"))

    def test_imported_trace_drives_controller(self, tmp_path):
        path = tmp_path / "trace.csv"
        rows = "\n".join(f"{i * 64},{'W' if i % 4 == 0 else 'R'},62"
                         for i in range(500))
        path.write_text(rows + "\n")
        controller = BumblebeeController(hbm2_config(8 * MIB),
                                         ddr4_3200_config(80 * MIB))
        from repro.sim import SimulationDriver
        result = SimulationDriver().run(
            controller, import_trace(path), workload="imported")
        assert result.requests == 500
        controller.check_invariants()


class TestTelemetry:
    def make(self):
        return BumblebeeController(hbm2_config(8 * MIB),
                                   ddr4_3200_config(80 * MIB))

    def test_snapshot_way_conservation(self):
        controller = self.make()
        now = 0.0
        for request in workload_trace("mcf", 2000):
            controller.access(request, now)
            now += 50.0
        snap = snapshot(controller)
        total = controller.geometry.sets * controller.geometry.hbm_ways
        assert snap.total_ways == total
        assert snap.allocated_pages > 0

    def test_recorder_samples_on_interval(self):
        controller = self.make()
        recorder = TelemetryRecorder(interval=250)
        now = 0.0
        for request in workload_trace("mcf", 1000):
            controller.access(request, now)
            now += 50.0
            recorder.tick(controller)
        assert len(recorder.snapshots) == 4

    def test_recorder_interval_validation(self):
        with pytest.raises(ValueError):
            TelemetryRecorder(interval=0)

    def test_chbm_share_series_bounded(self):
        controller = self.make()
        recorder = TelemetryRecorder(interval=200)
        now = 0.0
        for request in workload_trace("wrf", 1200):
            controller.access(request, now)
            now += 50.0
            recorder.tick(controller)
        assert all(0.0 <= share <= 1.0
                   for share in recorder.chbm_share_series())

    def test_render_contains_header(self):
        recorder = TelemetryRecorder(interval=10)
        assert "cHBM" in recorder.render()

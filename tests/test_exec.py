"""Tests of the unified execution plane (:mod:`repro.exec`).

The load-bearing contract is backend equivalence: the same
:class:`CellPlan` executed by the serial loop, the process pool, and a
subprocess fabric fleet must produce byte-identical ``--no-timing``
campaign files — and resuming a partially-filled plan on any backend
must complete to the same bytes a straight-through run writes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import ExperimentConfig, ExperimentHarness
from repro.designs import DesignSpec
from repro.exec import (
    CellPlan,
    FabricBackend,
    FleetServeBackend,
    PlanError,
    PoolBackend,
    SerialBackend,
    comparison_of,
    enumerate_cells,
)

FAST = ExperimentConfig(requests=800, warmup=200,
                        workloads=("leela", "mcf"))
DESIGNS = ("Bumblebee", "AlloyCache")


def plan_for(tmp_path, name, **overrides):
    kwargs = dict(config=FAST, designs=DESIGNS,
                  workloads=("leela", "mcf"),
                  out=tmp_path / name, record_timing=False)
    kwargs.update(overrides)
    return CellPlan(**kwargs)


def fill(plan, backend):
    campaign = plan.open_campaign()
    try:
        return backend.execute(plan, campaign)
    finally:
        backend.close()


class TestCellPlan:
    def test_cells_are_design_major(self):
        cells = enumerate_cells(("A", "B"), ("x", "y"))
        assert cells == [("A", "x"), ("A", "y"),
                         ("B", "x"), ("B", "y")]

    def test_plan_cells_and_count(self, tmp_path):
        plan = plan_for(tmp_path, "c.jsonl")
        assert plan.cell_count == 4
        assert plan.cells()[0] == ("Bumblebee", "leela")

    def test_workloads_default_to_config(self, tmp_path):
        plan = CellPlan(config=FAST, designs=DESIGNS,
                        out=tmp_path / "c.jsonl")
        assert plan.workloads == FAST.workloads

    def test_open_requires_out(self):
        plan = CellPlan(config=FAST, designs=DESIGNS)
        with pytest.raises(PlanError):
            plan.open_campaign()

    def test_resume_requires_existing_file(self, tmp_path):
        plan = plan_for(tmp_path, "missing.jsonl", resume=True)
        with pytest.raises(PlanError, match="--resume"):
            plan.open_campaign()

    def test_comparison_roundtrips_through_records(self, tmp_path):
        plan = plan_for(tmp_path, "c.jsonl", designs=("Bumblebee",),
                        workloads=("leela",))
        campaign = plan.open_campaign()
        SerialBackend().execute(plan, campaign)
        stored = comparison_of(campaign, "Bumblebee", "leela")
        direct = ExperimentHarness(FAST).run_design("Bumblebee", "leela")
        assert stored == direct
        assert comparison_of(campaign, "Bumblebee", "mcf") is None

    def test_spec_cells_resume_keyed(self, tmp_path):
        spec = DesignSpec(base="Bumblebee", params={"chbm_ratio": 0.0})
        plan = plan_for(tmp_path, "c.jsonl", designs=(spec,),
                        workloads=("leela",))
        outcome = fill(plan, SerialBackend())
        assert outcome.new_runs == 1
        again = fill(plan_for(tmp_path, "c.jsonl", designs=(spec,),
                              workloads=("leela",), resume=True),
                     SerialBackend())
        assert again.new_runs == 0


class TestBackendEquivalence:
    """Same plan, any backend, same bytes."""

    def _fleet_fill(self, plan):
        campaign = plan.open_campaign()
        backend = FleetServeBackend(linger_s=2.0)
        url = backend.serve(campaign)
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "fabric", "work", url],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(sys.path)})
        try:
            outcome = backend.execute(plan, campaign)
        finally:
            backend.close()
        out, _ = worker.communicate(timeout=120)
        assert worker.returncode == 0, out.decode()
        return outcome

    def test_serial_pool_fleet_write_identical_bytes(self, tmp_path):
        serial = plan_for(tmp_path, "serial.jsonl")
        pool = plan_for(tmp_path, "pool.jsonl")
        fleet = plan_for(tmp_path, "fleet.jsonl")
        assert fill(serial, SerialBackend()).new_runs == 4
        assert fill(pool, PoolBackend(jobs=2)).new_runs == 4
        assert self._fleet_fill(fleet).new_runs == 4
        reference = serial.out.read_bytes()
        assert pool.out.read_bytes() == reference
        assert fleet.out.read_bytes() == reference

    @pytest.mark.parametrize("backend_name",
                             ["serial", "pool", "fleet"])
    def test_resume_mid_plan_is_bit_identical(self, tmp_path,
                                              backend_name):
        # Straight-through reference on the serial backend.
        reference = plan_for(tmp_path, "ref.jsonl")
        fill(reference, SerialBackend())
        # Partial fill: the exact record prefix (first design only).
        out = f"{backend_name}.jsonl"
        fill(plan_for(tmp_path, out, designs=DESIGNS[:1]),
             SerialBackend())
        resumed = plan_for(tmp_path, out, resume=True)
        if backend_name == "serial":
            outcome = fill(resumed, SerialBackend())
        elif backend_name == "pool":
            outcome = fill(resumed, PoolBackend(jobs=2))
        else:
            outcome = self._fleet_fill(resumed)
        assert outcome.new_runs == 2
        assert resumed.out.read_bytes() == reference.out.read_bytes()


class TestFabricBackend:
    def test_refuses_adaptive_batches(self, tmp_path):
        plan = plan_for(tmp_path, "c.jsonl")
        campaign = plan.open_campaign()
        backend = FabricBackend("http://127.0.0.1:1")
        with pytest.raises(PlanError, match="--fabric-serve"):
            backend.run_cells(campaign, plan.cells())


class TestStoreMirroring:
    def test_plan_db_records_with_source(self, tmp_path):
        plan = plan_for(tmp_path, "c.jsonl", designs=("Bumblebee",),
                        workloads=("leela",),
                        db=str(tmp_path / "runs.db"), source="explore")
        campaign = plan.open_campaign()
        SerialBackend().execute(plan, campaign)
        assert campaign.store.counts_by_source() == {"explore": 1}

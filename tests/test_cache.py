"""Tests for the set-associative cache, replacement policies, hierarchy."""

import pytest

from repro.cache import (
    CacheHierarchy,
    DRRIPPolicy,
    HierarchyConfig,
    LRUPolicy,
    SetAssociativeCache,
    SRRIPPolicy,
    make_policy,
)


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        state = policy.new_set_state(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(state, way)
        policy.on_hit(state, 0)
        assert policy.victim(state) == 1

    def test_fill_becomes_mru(self):
        policy = LRUPolicy()
        state = policy.new_set_state(2)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        assert policy.victim(state) == 0


class TestSRRIPPolicy:
    def test_hit_promotes(self):
        policy = SRRIPPolicy()
        state = policy.new_set_state(2)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        policy.on_hit(state, 0)
        assert policy.victim(state) == 1

    def test_aging_terminates(self):
        policy = SRRIPPolicy()
        state = policy.new_set_state(4)
        for way in range(4):
            policy.on_fill(state, way)
            policy.on_hit(state, way)
        # All RRPV 0: victim search must still terminate via aging.
        assert 0 <= policy.victim(state) < 4


class TestDRRIPPolicy:
    def test_fill_and_victim_work(self):
        policy = DRRIPPolicy()
        for set_index in range(64):
            state = policy.new_set_state(4)
            for way in range(4):
                policy.on_fill(state, way, set_index)
            assert 0 <= policy.victim(state, set_index) < 4

    def test_factory(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("srrip"), SRRIPPolicy)
        assert isinstance(make_policy("drrip"), DRRIPPolicy)
        with pytest.raises(ValueError):
            make_policy("nonsense")


class TestSetAssociativeCache:
    def make(self, capacity=8 * 1024, line=64, ways=4):
        return SetAssociativeCache(capacity, line, ways)

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit

    def test_same_line_different_bytes_hit(self):
        cache = self.make()
        cache.access(0x100)
        assert cache.access(0x13F).hit

    def test_eviction_reports_victim_address(self):
        cache = SetAssociativeCache(256, 64, 1)  # 4 sets, direct mapped
        cache.access(0)
        outcome = cache.access(256)  # same set as 0
        assert outcome.evicted_addr == 0

    def test_dirty_eviction_flagged(self):
        cache = SetAssociativeCache(256, 64, 1)
        cache.access(0, is_write=True)
        outcome = cache.access(256)
        assert outcome.evicted_dirty
        assert cache.writebacks == 1

    def test_clean_eviction_not_flagged(self):
        cache = SetAssociativeCache(256, 64, 1)
        cache.access(0)
        assert not cache.access(256).evicted_dirty

    def test_probe_has_no_side_effects(self):
        cache = self.make()
        assert not cache.probe(0x100)
        cache.access(0x100)
        assert cache.probe(0x100)
        assert cache.hits + cache.misses == 1

    def test_invalidate(self):
        cache = self.make()
        cache.access(0x100)
        assert cache.invalidate(0x100)
        assert not cache.access(0x100).hit

    def test_hit_rate(self):
        cache = self.make()
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_capacity_respected(self):
        cache = SetAssociativeCache(1024, 64, 4)
        for i in range(100):
            cache.access(i * 64)
        assert cache.resident_lines() == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 64, 4)   # capacity not multiple
        with pytest.raises(ValueError):
            SetAssociativeCache(192, 64, 4)   # lines not multiple of ways


class TestHierarchy:
    def test_first_access_reaches_memory(self):
        hierarchy = CacheHierarchy()
        requests = hierarchy.access(0x1000)
        assert len(requests) == 1
        assert not requests[0].is_write

    def test_l1_hit_stays_on_chip(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x1000)
        assert hierarchy.access(0x1000) == []

    def test_miss_stream_preserves_instruction_count(self):
        hierarchy = CacheHierarchy()
        accesses = [(i * 64, False, 100) for i in range(50)]
        stream = list(hierarchy.llc_miss_stream(accesses))
        assert sum(r.icount for r in stream) == 50 * 100

    def test_mpki_computation(self):
        hierarchy = CacheHierarchy()
        for i in range(1000):
            hierarchy.access(i * 64)
        assert hierarchy.mpki(1_000_000) == pytest.approx(
            hierarchy.llc.misses / 1000.0)

    def test_table1_configuration(self):
        config = HierarchyConfig()
        hierarchy = CacheHierarchy(config)
        assert hierarchy.l1.capacity_bytes == 64 * 1024
        assert hierarchy.l2.ways == 8
        assert hierarchy.llc.ways == 16
        assert hierarchy.llc.capacity_bytes == 8 << 20

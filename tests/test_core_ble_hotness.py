"""Tests for the BLE array and the hotness tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BLEArray, BlockLocationEntry, HotnessTracker, WayMode
from repro.core.hotness import HotQueue


class TestBlockLocationEntry:
    def test_fresh_entry_is_free(self):
        entry = BlockLocationEntry()
        assert entry.mode is WayMode.FREE
        assert entry.owner == -1
        assert entry.valid_count() == 0

    def test_block_marks(self):
        entry = BlockLocationEntry()
        entry.mark_valid(3)
        entry.mark_dirty(3)
        assert entry.block_valid(3)
        assert not entry.block_valid(2)
        assert entry.valid_count() == 1
        assert entry.dirty_count() == 1

    def test_missing_blocks(self):
        entry = BlockLocationEntry()
        entry.mark_valid(0)
        entry.mark_valid(5)
        assert entry.missing_blocks(32) == 30

    def test_overfetch_lines(self):
        entry = BlockLocationEntry()
        entry.mark_brought_lines(0b1111)
        entry.mark_used_line(1)
        assert entry.unused_brought_lines() == 3

    def test_used_line_outside_brought_does_not_go_negative(self):
        entry = BlockLocationEntry()
        entry.mark_brought_lines(0b11)
        entry.mark_used_line(10)  # demand to a never-fetched line
        assert entry.unused_brought_lines() == 2

    def test_reset(self):
        entry = BlockLocationEntry(owner=4, mode=WayMode.MHBM, valid=7)
        entry.reset()
        assert entry.mode is WayMode.FREE
        assert entry.owner == -1
        assert entry.valid == 0


class TestBLEArray:
    def test_find_owner(self):
        array = BLEArray(ways=4, blocks_per_page=32)
        array[2].owner = 9
        array[2].mode = WayMode.CHBM
        assert array.find_owner(9) == 2
        assert array.find_owner(5) is None

    def test_free_entries_never_match_owner(self):
        array = BLEArray(ways=4, blocks_per_page=32)
        array[1].owner = 9  # free mode: stale owner must not match
        assert array.find_owner(9) is None

    def test_find_free_with_restriction(self):
        array = BLEArray(ways=4, blocks_per_page=32)
        array[0].mode = WayMode.MHBM
        array[1].mode = WayMode.CHBM
        assert array.find_free() == 2
        assert array.find_free(range(0, 2)) is None

    def test_occupancy(self):
        array = BLEArray(ways=4, blocks_per_page=32)
        assert array.occupancy() == 0.0
        array[0].mode = WayMode.MHBM
        array[1].mode = WayMode.CHBM
        assert array.occupancy() == pytest.approx(0.5)

    def test_spatial_counts(self):
        array = BLEArray(ways=4, blocks_per_page=32)
        # Na: mHBM with >= 16 valid blocks
        array[0].mode = WayMode.MHBM
        array[0].valid = (1 << 20) - 1  # 20 blocks
        # Nn: mHBM below threshold
        array[1].mode = WayMode.MHBM
        array[1].valid = 0b11
        # Nc: cHBM
        array[2].mode = WayMode.CHBM
        na, nn, nc = array.spatial_counts(most_blocks_threshold=16)
        assert (na, nn, nc) == (1, 1, 1)


class TestHotQueue:
    def test_push_until_overflow(self):
        queue = HotQueue(capacity=2)
        assert queue.push(1) is None
        assert queue.push(2) is None
        popped = queue.push(3)
        assert popped == (1, 1)  # LRU entry out

    def test_touch_moves_to_mru(self):
        queue = HotQueue(capacity=2)
        queue.push(1)
        queue.push(2)
        queue.touch(1, counter_max=255)
        assert queue.push(3) == (2, 1)

    def test_counter_saturates(self):
        queue = HotQueue(capacity=1)
        queue.push(1)
        for _ in range(10):
            queue.touch(1, counter_max=3)
        assert queue.counter(1) == 3

    def test_push_existing_keeps_max_counter(self):
        queue = HotQueue(capacity=2)
        queue.push(1, counter=5)
        queue.push(1, counter=2)
        assert queue.counter(1) == 5

    def test_min_counter_and_head(self):
        queue = HotQueue(capacity=3)
        queue.push(1, counter=5)
        queue.push(2, counter=3)
        assert queue.min_counter() == 3
        assert queue.lru_head() == (1, 5)

    def test_remove(self):
        queue = HotQueue(capacity=2)
        queue.push(1, counter=7)
        assert queue.remove(1) == 7
        assert queue.remove(1) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            HotQueue(capacity=0)


class TestHotnessTracker:
    def make(self):
        return HotnessTracker(hbm_entries=4, dram_entries=4, counter_max=255)

    def test_dram_access_tracked(self):
        tracker = self.make()
        tracker.record_dram_access(7)
        tracker.record_dram_access(7)
        assert tracker.hotness(7) == 2

    def test_promote_carries_counter(self):
        tracker = self.make()
        tracker.record_dram_access(7)
        tracker.record_dram_access(7)
        tracker.promote(7)
        assert tracker.hbm_queue.counter(7) == 2
        assert 7 not in tracker.dram_queue

    def test_demote_returns_entry_to_dram_queue(self):
        tracker = self.make()
        tracker.record_dram_access(7)
        tracker.promote(7)
        tracker.demote(7)
        assert 7 in tracker.dram_queue
        assert 7 not in tracker.hbm_queue

    def test_threshold_is_min_hbm_counter(self):
        tracker = self.make()
        for page, touches in ((1, 3), (2, 7)):
            for _ in range(touches):
                tracker.record_dram_access(page)
            tracker.promote(page)
        assert tracker.threshold() == 3

    def test_threshold_empty_queue_is_zero(self):
        assert self.make().threshold() == 0

    def test_zombie_detected_after_patience(self):
        tracker = self.make()
        tracker.record_dram_access(1)
        tracker.promote(1)
        tracker.record_dram_access(2)
        tracker.promote(2)
        zombie = None
        for _ in range(10):
            zombie = tracker.observe_zombie(patience=3)
            if zombie is not None:
                break
        assert zombie == 1  # the untouched LRU head

    def test_active_head_is_not_zombie(self):
        tracker = self.make()
        tracker.record_dram_access(1)
        tracker.promote(1)
        for _ in range(10):
            tracker.record_hbm_access(1)  # counter keeps changing
            assert tracker.observe_zombie(patience=2) is None

    def test_aging_halves_counters(self):
        tracker = self.make()
        for _ in range(8):
            tracker.record_dram_access(5)
        tracker.promote(5)
        tracker.age()
        assert tracker.hbm_queue.counter(5) == 4

    def test_aging_floors_at_one(self):
        tracker = self.make()
        tracker.record_dram_access(5)
        tracker.age()
        assert tracker.dram_queue.counter(5) == 1


class TestHotQueueProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 20), max_size=100))
    def test_capacity_never_exceeded(self, pages):
        queue = HotQueue(capacity=5)
        for page in pages:
            queue.push(page)
            assert len(queue) <= 5

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 10), min_size=1, max_size=60))
    def test_min_counter_consistent(self, pages):
        queue = HotQueue(capacity=4)
        for page in pages:
            if page in queue:
                queue.touch(page, counter_max=255)
            else:
                queue.push(page)
        assert queue.min_counter() == min(
            queue.counter(p) for p in queue.pages())

"""Tests for controller checkpointing and the trace-analysis tools."""

import pytest

from repro.analysis import (
    locality_fingerprint,
    reuse_distance_profile,
    stride_profile,
    windowed_statistics,
)
from repro.core import (
    BumblebeeConfig,
    BumblebeeController,
    WayMode,
    load_checkpoint,
    load_state,
    save_checkpoint,
    state_dict,
)
from repro.mem import ddr4_3200_config, hbm2_config
from repro.sim import MemoryRequest, SimulationDriver
from repro.traces import SyntheticSpec, SyntheticTraceGenerator, \
    workload_trace

MIB = 1 << 20
HBM = hbm2_config(8 * MIB)
DRAM = ddr4_3200_config(80 * MIB)


def warmed_controller(requests=8000):
    controller = BumblebeeController(HBM, DRAM)
    trace = workload_trace("mcf", requests)
    SimulationDriver().run(controller, trace, workload="mcf")
    return controller


class TestCheckpoint:
    def test_roundtrip_preserves_placement(self):
        source = warmed_controller()
        clone = BumblebeeController(HBM, DRAM)
        load_state(clone, state_dict(source))
        g = source.geometry
        for set_index in range(g.sets):
            for orig in range(g.slots_per_set):
                assert clone.prt[set_index].slot_of(orig) == \
                    source.prt[set_index].slot_of(orig)
            for way in range(g.hbm_ways):
                assert clone.ble[set_index][way].mode is \
                    source.ble[set_index][way].mode
                assert clone.ble[set_index][way].valid == \
                    source.ble[set_index][way].valid
        clone.check_invariants()

    def test_roundtrip_preserves_hot_queues(self):
        source = warmed_controller()
        clone = BumblebeeController(HBM, DRAM)
        load_state(clone, state_dict(source))
        for set_index in range(source.geometry.sets):
            assert clone.hot[set_index].hbm_queue.pages() == \
                source.hot[set_index].hbm_queue.pages()
            assert clone.hot[set_index].threshold() == \
                source.hot[set_index].threshold()

    def test_file_roundtrip(self, tmp_path):
        source = warmed_controller()
        path = tmp_path / "ckpt.json"
        save_checkpoint(source, path)
        clone = BumblebeeController(HBM, DRAM)
        load_checkpoint(clone, path)
        clone.check_invariants()

    def test_restored_controller_behaves_like_source(self):
        source = warmed_controller()
        clone = BumblebeeController(HBM, DRAM)
        load_state(clone, state_dict(source))
        probe = workload_trace("mcf", 2000, seed=77)
        a = SimulationDriver().run(source, probe, workload="mcf")
        b = SimulationDriver().run(clone, probe, workload="mcf")
        assert b.hbm_hit_rate == pytest.approx(a.hbm_hit_rate, abs=0.05)

    def test_mismatched_geometry_rejected(self):
        source = warmed_controller()
        other = BumblebeeController(hbm2_config(16 * MIB), DRAM)
        with pytest.raises(ValueError):
            load_state(other, state_dict(source))

    def test_mismatched_config_rejected(self):
        source = warmed_controller()
        other = BumblebeeController(
            HBM, DRAM, BumblebeeConfig(block_bytes=4096))
        with pytest.raises(ValueError):
            load_state(other, state_dict(source))

    def test_bad_version_rejected(self):
        source = warmed_controller()
        state = state_dict(source)
        state["version"] = 999
        with pytest.raises(ValueError):
            load_state(BumblebeeController(HBM, DRAM), state)

    def test_state_is_json_serialisable(self):
        import json
        json.dumps(state_dict(warmed_controller(2000)))


class TestReuseDistance:
    def test_repeated_line_counts_as_short_reuse(self):
        trace = [MemoryRequest(addr=0)] * 10
        profile = reuse_distance_profile(trace)
        assert profile.counts[0] == 9
        assert profile.cold == 1

    def test_streaming_is_all_cold(self):
        trace = [MemoryRequest(addr=i * 64) for i in range(500)]
        profile = reuse_distance_profile(trace)
        assert profile.cold_fraction() == 1.0

    def test_hit_rate_prediction_monotone_in_capacity(self):
        trace = workload_trace("mcf", 6000)
        profile = reuse_distance_profile(trace)
        small = profile.hit_rate_at(16)
        large = profile.hit_rate_at(1 << 20)
        assert small <= large

    def test_distance_reflects_intervening_lines(self):
        # a, b, c, a: a's reuse distance is 2 (b and c in between).
        trace = [MemoryRequest(addr=x * 64) for x in (0, 1, 2, 0)]
        profile = reuse_distance_profile(trace, bounds=(2, 4, 8))
        assert profile.counts[1] == 1  # 2 <= distance < 4


class TestStrideProfile:
    def test_sequential_stream_detected(self):
        trace = [MemoryRequest(addr=i * 64) for i in range(200)]
        profile = stride_profile(trace)
        assert profile.sequential > 0.95

    def test_interleaved_streams_detected(self):
        # Two alternating streams: consecutive deltas are huge but the
        # lookback window sees both continuations.
        trace = []
        for i in range(100):
            trace.append(MemoryRequest(addr=i * 64))
            trace.append(MemoryRequest(addr=(1 << 24) + i * 64))
        profile = stride_profile(trace)
        assert profile.sequential > 0.9

    def test_random_scatter_is_far(self):
        import random
        rng = random.Random(1)
        trace = [MemoryRequest(addr=rng.randrange(1 << 30) // 64 * 64)
                 for _ in range(300)]
        profile = stride_profile(trace)
        assert profile.far > 0.9

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            stride_profile([MemoryRequest(addr=0)])


class TestWindowedStatistics:
    def test_window_count(self):
        trace = workload_trace("mcf", 5000)
        series = windowed_statistics(trace, window=1000)
        assert len(series.mpki) == 5

    def test_mpki_tracks_spec(self):
        trace = workload_trace("mcf", 4000)
        series = windowed_statistics(trace, window=2000)
        for value in series.mpki:
            assert value == pytest.approx(16.1, rel=0.1)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_statistics([], window=0)


class TestFingerprint:
    def test_orders_fig1_trio(self):
        from repro.traces import SystemScale, synthetic_spec
        scale = SystemScale(1.0 / 256.0)
        prints = {}
        for name in ("mcf", "wrf", "xz"):
            generator = SyntheticTraceGenerator(
                synthetic_spec(name, scale), seed=1)
            prints[name] = locality_fingerprint(generator.generate(20000))
        assert prints["xz"]["spatial_score"] > \
            prints["wrf"]["spatial_score"]
        assert prints["mcf"]["temporal_score"] > \
            prints["xz"]["temporal_score"]
        assert prints["wrf"]["temporal_score"] > \
            prints["xz"]["temporal_score"]

"""Property-based tests for the memory substrate's physical invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    EnergyCounters,
    EnergyModel,
    MemoryDevice,
    ddr4_3200_config,
    ddr5_4800_config,
    hbm2_config,
    hbm3_config,
)

MIB = 1 << 20
CONFIGS = [hbm2_config, ddr4_3200_config, hbm3_config, ddr5_4800_config]


class TestTimeMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, (8 * MIB) - 64),
                              st.booleans(),
                              st.floats(0.0, 100.0)),
                    min_size=2, max_size=60))
    def test_completion_never_precedes_issue(self, accesses):
        """Every access completes after it was issued, at every device."""
        device = MemoryDevice(hbm2_config(8 * MIB))
        now = 0.0
        for addr, is_write, gap in accesses:
            now += gap
            access = device.access(addr, 64, is_write, now)
            assert access.done_ns >= now
            assert access.latency_ns > 0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, (8 * MIB) - 64), min_size=2,
                    max_size=40))
    def test_same_channel_bus_serialises(self, addrs):
        """Back-to-back accesses at the same instant never interleave on
        one channel's bus: completion times strictly increase."""
        device = MemoryDevice(hbm2_config(8 * MIB))
        done_by_channel: dict[int, float] = {}
        for addr in addrs:
            decoded = device.mapper.decode(addr)
            access = device.access(addr, 64, False, 0.0)
            previous = done_by_channel.get(decoded.channel)
            if previous is not None:
                assert access.done_ns > previous
            done_by_channel[decoded.channel] = access.done_ns

    @settings(max_examples=20, deadline=None)
    @given(st.integers(64, 256 * 1024), st.floats(0.0, 1000.0))
    def test_bulk_completion_after_start(self, nbytes, now):
        device = MemoryDevice(ddr4_3200_config(80 * MIB))
        done = device.bulk_transfer(0, nbytes, False, now)
        assert done > now


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, (8 * MIB) - 64),
                              st.booleans()),
                    min_size=1, max_size=50))
    def test_traffic_equals_sum_of_accesses(self, accesses):
        device = MemoryDevice(hbm2_config(8 * MIB))
        for index, (addr, is_write) in enumerate(accesses):
            device.access(addr, 64, is_write, index * 100.0)
        traffic = device.traffic()
        assert traffic.total_bytes == 64 * len(accesses)
        assert traffic.write_bytes == 64 * sum(
            1 for _, w in accesses if w)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10), st.integers(0, 10), st.integers(0, 10))
    def test_energy_nonnegative_and_additive(self, acts, reads, writes):
        model = EnergyModel(hbm2_config())
        breakdown = model.breakdown(
            EnergyCounters(activations=acts, read_bursts=reads,
                           write_bursts=writes), elapsed_ns=1000.0)
        assert breakdown.dynamic_pj >= 0
        assert breakdown.dynamic_pj == pytest.approx(
            acts * model.activate_pj + reads * model.read_burst_pj
            + writes * model.write_burst_pj)


class TestAllPresets:
    @pytest.mark.parametrize("factory", CONFIGS)
    def test_demand_latency_within_sane_bounds(self, factory):
        device = MemoryDevice(factory(32 * MIB))
        access = device.access(0, 64, False, 0.0)
        # Unloaded DRAM access: single-digit to low-double-digit ns.
        assert 1.0 < access.latency_ns < 200.0

    @pytest.mark.parametrize("factory", CONFIGS)
    def test_row_hit_faster_than_conflict(self, factory):
        config = factory(32 * MIB)
        device = MemoryDevice(config)
        first = device.access(0, 64, False, 0.0)
        hit = device.access(0, 64, False, 1_000.0)
        row_stride = (config.geometry.row_bytes * config.geometry.channels
                      * config.geometry.banks_per_channel)
        conflict = device.access(row_stride, 64, False, 2_000.0)
        assert hit.latency_ns < conflict.latency_ns

    @pytest.mark.parametrize("factory", CONFIGS)
    def test_stacked_parts_have_more_bandwidth(self, factory):
        config = factory()
        if config.is_stacked:
            assert config.peak_bandwidth_gbs > 200
        else:
            assert config.peak_bandwidth_gbs < 100
